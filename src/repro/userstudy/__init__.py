"""User-study substrate: the Section VII game, subjects and analysis."""

from .analysis import (
    STAGES,
    STAGE_ORDER,
    TrueIntervalAnalysis,
    average_defection_rates,
    average_flexibility_series,
    defection_count,
    defection_mann_whitney,
    defection_rate,
    flexibility_series,
    treatment_defection_rates,
    true_interval_analysis,
    true_interval_paired_test,
    true_interval_selecting_ratio,
)
from .calculator import (
    CalculatorGuidedSubject,
    PayoffCalculator,
    PayoffEstimate,
)
from .game import (
    ROUNDS_PER_SESSION,
    ArtificialAgentScript,
    GameSession,
    SessionResult,
    SubjectRoundLog,
)
from .subjects import (
    GoodSubject,
    LearningSubject,
    RandomSubject,
    RoundExperience,
    SubjectModel,
    TruthfulSubject,
    default_subject_pool,
)
from .treatments import StudyResult, StudySubjectRecord, run_study

__all__ = [
    "STAGES",
    "STAGE_ORDER",
    "average_defection_rates",
    "defection_count",
    "defection_rate",
    "defection_mann_whitney",
    "treatment_defection_rates",
    "true_interval_selecting_ratio",
    "true_interval_analysis",
    "true_interval_paired_test",
    "TrueIntervalAnalysis",
    "flexibility_series",
    "average_flexibility_series",
    "PayoffCalculator",
    "PayoffEstimate",
    "CalculatorGuidedSubject",
    "ROUNDS_PER_SESSION",
    "ArtificialAgentScript",
    "GameSession",
    "SessionResult",
    "SubjectRoundLog",
    "SubjectModel",
    "TruthfulSubject",
    "RandomSubject",
    "LearningSubject",
    "GoodSubject",
    "RoundExperience",
    "default_subject_pool",
    "StudyResult",
    "StudySubjectRecord",
    "run_study",
]
