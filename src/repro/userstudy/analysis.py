"""Analysis pipeline for the user study (Tables II-IV, Figures 8-9).

Stage definitions follow Section VII-D exactly: Overall = Rounds 1-16,
Initial = 1-4, Defect = 1-8 (the artificial agents' defection window),
Cooperate = 9-16 (all agents cooperate).  Rounds are 0-indexed internally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..stats.mannwhitney import MannWhitneyResult, mann_whitney_u
from ..stats.wilcoxon import WilcoxonResult, wilcoxon_signed_rank
from .treatments import StudyResult, StudySubjectRecord

#: The paper's stages as half-open 0-indexed round ranges.
STAGES: Dict[str, Tuple[int, int]] = {
    "Overall": (0, 16),
    "Initial": (0, 4),
    "Defect": (0, 8),
    "Cooperate": (8, 16),
}

#: Column order used by the paper's tables.
STAGE_ORDER = ("Overall", "Initial", "Defect", "Cooperate")


def stage_rounds(stage: str) -> int:
    """Number of rounds in a stage."""
    start, end = STAGES[stage]
    return end - start


def defection_count(record: StudySubjectRecord, stage: str) -> int:
    """Rounds within the stage in which the subject defected."""
    start, end = STAGES[stage]
    return sum(
        1 for log in record.logs if start <= log.round_index < end and log.defected
    )


def defection_rate(record: StudySubjectRecord, stage: str) -> float:
    """The subject's defection rate within a stage."""
    return defection_count(record, stage) / stage_rounds(stage)


def average_defection_rates(study: StudyResult) -> Dict[str, float]:
    """Table II: average defection rate of all subjects per stage."""
    return {
        stage: sum(defection_rate(s, stage) for s in study.subjects)
        / len(study.subjects)
        for stage in STAGE_ORDER
    }


def defection_mann_whitney(study: StudyResult) -> Dict[str, MannWhitneyResult]:
    """Table III: is defection rarer than a random coin per stage?

    Sample 1 holds each subject's defection count; Sample 2 assumes random
    defection, i.e. every element is half the stage's round count.  The
    paper reports two-sided p-values.
    """
    results: Dict[str, MannWhitneyResult] = {}
    for stage in STAGE_ORDER:
        sample1 = [float(defection_count(s, stage)) for s in study.subjects]
        sample2 = [stage_rounds(stage) / 2.0] * len(study.subjects)
        results[stage] = mann_whitney_u(sample1, sample2, alternative="two-sided")
    return results


def treatment_defection_rates(study: StudyResult) -> Dict[int, Dict[str, float]]:
    """Table IV: average defection rate per treatment per stage."""
    rates: Dict[int, Dict[str, float]] = {}
    for treatment in (1, 2):
        group = study.by_treatment(treatment)
        rates[treatment] = {
            stage: sum(defection_rate(s, stage) for s in group) / len(group)
            for stage in STAGE_ORDER
        }
    return rates


def true_interval_selecting_ratio(record: StudySubjectRecord, stage: str) -> float:
    """Fraction of the stage's rounds with the exact true interval submitted."""
    start, end = STAGES[stage]
    hits = sum(
        1
        for log in record.logs
        if start <= log.round_index < end and log.chose_exact_true_interval
    )
    return hits / stage_rounds(stage)


@dataclass
class TrueIntervalAnalysis:
    """Figure 8: per-subject selecting ratios, Initial vs Cooperate."""

    subjects: List[int]
    initial_ratios: List[float]
    cooperate_ratios: List[float]
    test: MannWhitneyResult

    @property
    def mean_initial(self) -> float:
        return sum(self.initial_ratios) / len(self.initial_ratios)

    @property
    def mean_cooperate(self) -> float:
        return sum(self.cooperate_ratios) / len(self.cooperate_ratios)


def true_interval_analysis(study: StudyResult) -> TrueIntervalAnalysis:
    """Figure 8's RQ2 test, excluding non-understanding subjects.

    The paper removed the four subjects who reported not understanding the
    game and tested whether the remaining 16 select their true interval
    more often in Cooperate than in Initial (one-sided: Initial < Cooperate).
    """
    included = [s for s in study.subjects if s.understanding != "none"]
    initial = [true_interval_selecting_ratio(s, "Initial") for s in included]
    cooperate = [true_interval_selecting_ratio(s, "Cooperate") for s in included]
    test = mann_whitney_u(initial, cooperate, alternative="less")
    return TrueIntervalAnalysis(
        subjects=[s.study_subject_id for s in included],
        initial_ratios=initial,
        cooperate_ratios=cooperate,
        test=test,
    )


def true_interval_paired_test(study: StudyResult) -> WilcoxonResult:
    """Paired companion to Figure 8's test.

    Each subject contributes its own (Initial, Cooperate) selecting-ratio
    pair, so the Wilcoxon signed-rank test is the statistically natural
    choice; the paper applied the unpaired Mann-Whitney instead.  Both are
    provided so the two analyses can be compared.
    """
    included = [s for s in study.subjects if s.understanding != "none"]
    initial = [true_interval_selecting_ratio(s, "Initial") for s in included]
    cooperate = [true_interval_selecting_ratio(s, "Cooperate") for s in included]
    return wilcoxon_signed_rank(initial, cooperate, alternative="less")


def flexibility_series(record: StudySubjectRecord) -> List[float]:
    """Figure 9: the subject's per-round flexibility ratio.

    ``|submitted ∩ true| / |true|``: zero when the submission leaves the
    true window entirely (a defection-bound report), one when the subject
    submits exactly its true interval.
    """
    ordered = sorted(record.logs, key=lambda log: log.round_index)
    return [log.flexibility_ratio for log in ordered]


def average_flexibility_series(records: Sequence[StudySubjectRecord]) -> List[float]:
    """Round-by-round mean flexibility ratio over a subject group."""
    if not records:
        raise ValueError("need at least one record to average")
    series = [flexibility_series(record) for record in records]
    length = min(len(s) for s in series)
    return [
        sum(s[index] for s in series) / len(series) for index in range(length)
    ]
