"""The what-if payoff calculator handed to study subjects.

Section VII-B: "To reduce complexity, we provide subjects a calculator to
help them estimate their payoffs from different intervals before they
submit an interval."  This module implements that tool: given the
subject's true preference and a model of the rest of the neighborhood
(by default, the previous round's reports), it simulates the settlement
for each candidate submission and returns the estimated utilities.

Beyond reproducing the study artifact, the calculator doubles as a
decision aid a real deployment would ship, and powers the
:class:`CalculatorGuidedSubject` model — a subject who behaves exactly as
rationally as the tool allows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.intervals import HOURS_PER_DAY, Interval
from ..core.mechanism import EnkiMechanism, closest_feasible_consumption
from ..core.types import (
    ConsumptionMap,
    HouseholdId,
    HouseholdType,
    Neighborhood,
    Preference,
    Report,
)
from .subjects import RoundExperience, SubjectModel

#: A candidate window as a (begin, end) pair.
Window = Tuple[int, int]


@dataclass
class PayoffEstimate:
    """The calculator's estimate for one candidate submission."""

    window: Window
    utility: float
    would_defect: bool
    payment: float


class PayoffCalculator:
    """Simulates candidate submissions against an assumed neighborhood.

    Args:
        mechanism: The mechanism the game runs (the subject's simulations
            use the same rules, as the study's tool did).
        repeats: Simulated days per candidate (averages tie-breaking).
    """

    def __init__(
        self, mechanism: Optional[EnkiMechanism] = None, repeats: int = 2
    ) -> None:
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        self.mechanism = mechanism if mechanism is not None else EnkiMechanism()
        self.repeats = repeats

    def estimate(
        self,
        subject: HouseholdType,
        true_preference: Preference,
        assumed_others: Sequence[Tuple[HouseholdType, Preference]],
        candidates: Optional[Sequence[Window]] = None,
        seed: Optional[int] = None,
    ) -> List[PayoffEstimate]:
        """Estimate the subject's payoff for each candidate submission.

        Args:
            subject: The subject's household type (its id and rho).
            true_preference: The subject's granted true preference (drives
                the automated consumption and the valuation).
            assumed_others: The assumed neighbors: their types and the
                windows they are expected to submit (e.g. last round's).
            candidates: Windows to evaluate; all windows within +/- 3 hours
                of the true window when omitted.
            seed: Simulation seed.

        Returns:
            Estimates sorted best-utility-first.
        """
        duration = true_preference.duration
        if candidates is None:
            lo = max(0, true_preference.window.start - 3)
            hi = min(HOURS_PER_DAY, true_preference.window.end + 3)
            candidates = [
                (begin, end)
                for begin in range(lo, hi - duration + 1)
                for end in range(begin + duration, hi + 1)
            ]

        rng = random.Random(seed)
        others_households = [household for household, _ in assumed_others]
        neighborhood = Neighborhood.of(
            subject.with_preference(true_preference), *others_households
        )
        base_reports: Dict[HouseholdId, Report] = {
            household.household_id: Report(household.household_id, submitted)
            for household, submitted in assumed_others
        }

        estimates: List[PayoffEstimate] = []
        for begin, end in candidates:
            candidate = Preference(Interval(begin, end), duration)
            reports = dict(base_reports)
            reports[subject.household_id] = Report(subject.household_id, candidate)
            utility_total = 0.0
            payment_total = 0.0
            defected = False
            for _ in range(self.repeats):
                allocation = self.mechanism.allocate(
                    neighborhood, reports, random.Random(rng.randrange(2**63))
                ).allocation
                consumption: ConsumptionMap = {}
                for household in neighborhood:
                    true = (
                        true_preference
                        if household.household_id == subject.household_id
                        else household.true_preference
                    )
                    consumption[household.household_id] = (
                        closest_feasible_consumption(
                            true.window,
                            true.duration,
                            allocation[household.household_id],
                        )
                    )
                settlement = self.mechanism.settle(
                    neighborhood, reports, allocation, consumption
                )
                utility_total += settlement.utilities[subject.household_id]
                payment_total += settlement.payments[subject.household_id]
                if (
                    consumption[subject.household_id]
                    != allocation[subject.household_id]
                ):
                    defected = True
            estimates.append(
                PayoffEstimate(
                    window=(begin, end),
                    utility=utility_total / self.repeats,
                    would_defect=defected,
                    payment=payment_total / self.repeats,
                )
            )
        estimates.sort(key=lambda e: -e.utility)
        return estimates


class CalculatorGuidedSubject(SubjectModel):
    """A subject that always submits what the calculator recommends.

    Models the study's *intended* rational participant: before each round
    it evaluates its options against an assumed neighborhood (its own
    previous true preference peers are unknown to it, so it assumes a
    small truthful crowd around the evening peak) and submits the
    top-ranked window.
    """

    understanding = "good"

    def __init__(
        self,
        calculator: Optional[PayoffCalculator] = None,
        assumed_crowd: int = 6,
    ) -> None:
        if assumed_crowd < 1:
            raise ValueError(f"assumed_crowd must be >= 1, got {assumed_crowd}")
        self.calculator = calculator if calculator is not None else PayoffCalculator()
        self.assumed_crowd = assumed_crowd

    def submit(
        self,
        round_index: int,
        true_preference: Preference,
        history: List[RoundExperience],
        rng: random.Random,
    ) -> Preference:
        subject = HouseholdType("self", true_preference, 5.0)
        assumed = [
            (
                HouseholdType(f"assumed{i}", Preference.of(17 + i % 3, 23, 2), 5.0),
                Preference.of(17 + i % 3, 23, 2),
            )
            for i in range(self.assumed_crowd)
        ]
        # Subjects are told they "may lose points by defection", and a
        # submission inside the true window can never defect, whatever the
        # real neighborhood turns out to be.  The rational tool-user
        # therefore only weighs the safe candidates — the calculator's job
        # is to pick *how much* flexibility to reveal among them.
        window = true_preference.window
        duration = true_preference.duration
        candidates = [
            (begin, end)
            for begin in range(window.start, window.end - duration + 1)
            for end in range(begin + duration, window.end + 1)
        ]
        estimates = self.calculator.estimate(
            subject,
            true_preference,
            assumed,
            candidates=candidates,
            seed=rng.randrange(2**63),
        )
        begin, end = estimates[0].window
        return Preference(Interval(begin, end), true_preference.duration)
