"""The Section VII online game: 16 rounds of Enki with scored feedback.

Each session pits the subjects against artificial agents inside one Enki
neighborhood.  Per round:

1. every participant gets a true preference (subjects keep theirs for four
   rounds so they can learn; agents redraw every round);
2. subjects submit a window, agents follow their scripted policy (half
   defect during Rounds 1-8, all cooperate in Rounds 9-16);
3. Enki allocates; consumption is automated to the closest feasible
   placement inside the true window (defection happens exactly when the
   allocation misses the true window);
4. the day settles and each participant's quasilinear utility is
   transformed to a 0-100 score relative to the round's utility spread;
5. subjects see their own score history (their models read it back).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.intervals import HOURS_PER_DAY, Interval
from ..core.mechanism import EnkiMechanism, closest_feasible_consumption
from ..core.types import (
    ConsumptionMap,
    HouseholdId,
    HouseholdType,
    Neighborhood,
    Preference,
    Report,
)
from ..sim.profiles import ProfileGenerator
from ..sim.rng import spawn_seed
from .subjects import RoundExperience, SubjectModel

#: Rounds in a session (the paper's game length).
ROUNDS_PER_SESSION = 16

#: Subjects receive a fresh true preference every this many rounds.
SUBJECT_PREFERENCE_PERIOD = 4


def draw_true_preference(generator: ProfileGenerator, np_rng) -> Preference:
    """A granted true preference with slack.

    The study hands each participant "a true interval and a duration"; the
    Figure 9 flexibility ratios (strictly between 0 and 1) imply the true
    interval is wider than the duration, so participants can choose *how
    much* of their flexibility to reveal.  We pad the generator's narrow
    window by 1-3 hours.
    """
    narrow = generator.sample(np_rng, "draw").narrow
    pad = int(np_rng.integers(1, 4))
    end = min(HOURS_PER_DAY, narrow.window.end + pad)
    start = max(0, narrow.window.start - max(0, pad - (end - narrow.window.end)))
    return Preference(Interval(start, end), narrow.duration)


@dataclass
class ArtificialAgentScript:
    """A scripted neighbor: cooperates or defects per the session plan.

    The paper's control: half the agents defect in Rounds 1-8 and all
    cooperate in Rounds 9-16.  A defecting agent misreports by shifting
    its submitted window so its allocation can miss its true window.
    """

    agent_id: str
    defect_rounds: range
    shift: int = 3

    def submits(self, round_index: int, true_preference: Preference,
                rng: random.Random) -> Preference:
        if round_index in self.defect_rounds:
            duration = true_preference.duration
            window = true_preference.window
            direction = rng.choice([-1, 1])
            start = window.start + direction * self.shift
            start = max(0, min(start, HOURS_PER_DAY - duration))
            end = max(start + duration, min(window.end + direction * self.shift,
                                            HOURS_PER_DAY))
            return Preference(Interval(start, end), duration)
        return true_preference


@dataclass
class SubjectRoundLog:
    """One subject's full record of one round (the analysis input)."""

    subject_index: int
    round_index: int
    true_preference: Preference
    submitted: Preference
    allocation: Interval
    consumption: Interval
    defected: bool
    utility: float
    score: float

    @property
    def chose_exact_true_interval(self) -> bool:
        """Did the subject submit exactly its true interval? (RQ2)"""
        return self.submitted == self.true_preference

    @property
    def flexibility_ratio(self) -> float:
        """``|submitted ∩ true| / |true|`` — the Figure 9 metric."""
        true_window = self.true_preference.window
        return self.submitted.window.overlap(true_window) / true_window.length


@dataclass
class SessionResult:
    """All subject round logs of one session."""

    treatment: int
    session_index: int
    logs: List[SubjectRoundLog] = field(default_factory=list)

    def subject_logs(self, subject_index: int) -> List[SubjectRoundLog]:
        return [log for log in self.logs if log.subject_index == subject_index]


def _scores_from_utilities(utilities: Dict[HouseholdId, float]) -> Dict[HouseholdId, float]:
    """Affine map of a round's utilities onto [0, 100].

    The paper "transform[s] each subject's utility into a score between
    zero and 100"; we anchor the round's worst participant at 0 and best at
    100 (everyone at 50 when utilities tie), which preserves the ordering
    feedback subjects learn from.
    """
    values = list(utilities.values())
    low, high = min(values), max(values)
    if high - low < 1e-12:
        return {hid: 50.0 for hid in utilities}
    return {
        hid: 100.0 * (value - low) / (high - low)
        for hid, value in utilities.items()
    }


class GameSession:
    """One study session: a set of subjects plus scripted agents.

    Args:
        subjects: The human-subject models in this session.
        n_agents: Scripted artificial agents added as controls (6 in
            Treatment 1 sessions, 4 in Treatment 2).
        mechanism: Enki instance; defaults to paper parameters.
        generator: Draws true preferences (narrow windows are the granted
            "true interval").
    """

    def __init__(
        self,
        subjects: Sequence[SubjectModel],
        n_agents: int,
        mechanism: Optional[EnkiMechanism] = None,
        generator: Optional[ProfileGenerator] = None,
    ) -> None:
        if not subjects:
            raise ValueError("a session needs at least one subject")
        if n_agents < 0:
            raise ValueError(f"n_agents cannot be negative, got {n_agents}")
        self.subjects = list(subjects)
        self.n_agents = n_agents
        self.mechanism = mechanism if mechanism is not None else EnkiMechanism()
        self.generator = generator if generator is not None else ProfileGenerator()

    def play(
        self,
        treatment: int,
        session_index: int,
        seed: Optional[int] = None,
        rounds: int = ROUNDS_PER_SESSION,
    ) -> SessionResult:
        """Play one full session and return the subject logs."""
        import numpy as np

        rng = random.Random(seed)
        np_rng = np.random.default_rng(spawn_seed(rng))

        agents = [
            ArtificialAgentScript(
                agent_id=f"agent{a}",
                # Half the agents defect during the first 8 rounds.
                defect_rounds=range(0, 8) if a < self.n_agents // 2 else range(0),
            )
            for a in range(self.n_agents)
        ]
        histories: List[List[RoundExperience]] = [[] for _ in self.subjects]
        result = SessionResult(treatment=treatment, session_index=session_index)

        subject_prefs: List[Preference] = []
        agent_prefs: Dict[str, Preference] = {}
        subject_rho: List[float] = [
            float(np_rng.uniform(1.0, 10.0)) for _ in self.subjects
        ]

        for round_index in range(rounds):
            # Redraw true preferences: subjects every 4 rounds, agents always.
            if round_index % SUBJECT_PREFERENCE_PERIOD == 0:
                subject_prefs = [
                    draw_true_preference(self.generator, np_rng)
                    for _ in range(len(self.subjects))
                ]
            agent_prefs = {
                agent.agent_id: draw_true_preference(self.generator, np_rng)
                for agent in agents
            }

            households: List[HouseholdType] = []
            reports: Dict[HouseholdId, Report] = {}
            for s, subject in enumerate(self.subjects):
                hid = f"subject{s}"
                true_pref = subject_prefs[s]
                households.append(
                    HouseholdType(hid, true_pref, valuation_factor=subject_rho[s])
                )
                submitted = subject.submit(
                    round_index, true_pref, histories[s], rng
                )
                reports[hid] = Report(hid, submitted)
            for agent in agents:
                true_pref = agent_prefs[agent.agent_id]
                households.append(
                    HouseholdType(agent.agent_id, true_pref, valuation_factor=5.0)
                )
                reports[agent.agent_id] = Report(
                    agent.agent_id, agent.submits(round_index, true_pref, rng)
                )

            neighborhood = Neighborhood.of(*households)
            allocation_result = self.mechanism.allocate(
                neighborhood, reports, random.Random(spawn_seed(rng))
            )
            consumption: ConsumptionMap = {}
            for household in neighborhood:
                true = household.true_preference
                consumption[household.household_id] = closest_feasible_consumption(
                    true.window,
                    true.duration,
                    allocation_result.allocation[household.household_id],
                )
            settlement = self.mechanism.settle(
                neighborhood, reports, allocation_result.allocation, consumption
            )
            scores = _scores_from_utilities(settlement.utilities)

            for s, subject in enumerate(self.subjects):
                hid = f"subject{s}"
                log = SubjectRoundLog(
                    subject_index=s,
                    round_index=round_index,
                    true_preference=subject_prefs[s],
                    submitted=reports[hid].preference,
                    allocation=allocation_result.allocation[hid],
                    consumption=consumption[hid],
                    defected=consumption[hid] != allocation_result.allocation[hid],
                    utility=settlement.utilities[hid],
                    score=scores[hid],
                )
                result.logs.append(log)
                histories[s].append(
                    RoundExperience(
                        round_index=round_index,
                        true_preference=subject_prefs[s],
                        submitted=log.submitted,
                        defected=log.defected,
                        score=log.score,
                    )
                )
        return result
