"""Simulated participants for the Section VII user-study game.

The paper ran 20 human subjects through a 16-round game.  We substitute
parameterized behaviour models that encode the regularities the paper
reports (see DESIGN.md, substitutions):

* four subjects "had not understood the game at all: they randomly
  submitted an interval in each round" — :class:`RandomSubject`;
* most subjects learned: they explored misreports early (the Initial
  stage's higher defection rate) and drifted toward their exact true
  interval as scores taught them defection loses points —
  :class:`LearningSubject`;
* two subjects (P7, P8) "understood the game well": they defect often in
  Rounds 1-8 and then stick to their exact true interval —
  :class:`GoodSubject`.

A *submission* here is the reported window; the game then allocates within
it and automates consumption to the closest feasible placement inside the
true window, so a submission whose allocation misses the true window is
what realizes a defection.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import List, Optional

from ..core.intervals import HOURS_PER_DAY, Interval
from ..core.types import Preference


@dataclass
class RoundExperience:
    """What a participant can remember about one played round."""

    round_index: int
    true_preference: Preference
    submitted: Preference
    defected: bool
    score: float


class SubjectModel(abc.ABC):
    """A simulated study participant.

    Attributes:
        understanding: Self-reported understanding from the post-study
            questionnaire: ``"none"``, ``"intermediate"`` or ``"good"``.
            The RQ2 analysis excludes the ``"none"`` group, as the paper
            did with its four non-understanding subjects.
    """

    understanding: str = "intermediate"

    @abc.abstractmethod
    def submit(
        self,
        round_index: int,
        true_preference: Preference,
        history: List[RoundExperience],
        rng: random.Random,
    ) -> Preference:
        """Choose the window to submit this round (duration is fixed)."""

    @staticmethod
    def _clamp_window(start: int, end: int, duration: int) -> Preference:
        start = max(0, min(start, HOURS_PER_DAY - duration))
        end = max(start + duration, min(end, HOURS_PER_DAY))
        return Preference(Interval(start, end), duration)


class TruthfulSubject(SubjectModel):
    """Always submits exactly the true interval (a control model)."""

    understanding = "good"

    def submit(
        self,
        round_index: int,
        true_preference: Preference,
        history: List[RoundExperience],
        rng: random.Random,
    ) -> Preference:
        return true_preference


class RandomSubject(SubjectModel):
    """Submits a uniformly random valid window each round.

    Models the four questionnaire respondents who reported not
    understanding the game at all.
    """

    understanding = "none"

    def __init__(self, anchor_slack: int = 2, truth_bias: float = 0.3) -> None:
        if anchor_slack < 0:
            raise ValueError(f"anchor slack cannot be negative, got {anchor_slack}")
        if not 0.0 <= truth_bias <= 1.0:
            raise ValueError(f"truth bias must be in [0, 1], got {truth_bias}")
        self.anchor_slack = anchor_slack
        self.truth_bias = truth_bias

    def submit(
        self,
        round_index: int,
        true_preference: Preference,
        history: List[RoundExperience],
        rng: random.Random,
    ) -> Preference:
        # Even a confused subject stares at its displayed true interval:
        # sometimes it just submits the shown default...
        if rng.random() < self.truth_bias:
            return true_preference
        # ...otherwise the random window is anchored near it rather than
        # uniform over the day (uniform placement would defect nearly
        # every round).
        duration = true_preference.duration
        width = rng.randint(duration, min(HOURS_PER_DAY, duration + 4))
        anchor = true_preference.window.start + rng.randint(
            -self.anchor_slack, self.anchor_slack
        )
        start = max(0, min(anchor, HOURS_PER_DAY - width))
        return Preference(Interval(start, start + width), duration)


class LearningSubject(SubjectModel):
    """Explores misreports early, converges to truth as scores teach it.

    Keeps a running average score for exploratory (misreported) rounds and
    for truthful rounds; each round it explores with a probability that
    starts at ``explore_start`` and shrinks both with time and whenever
    truthful rounds have scored at least as well as exploration.
    """

    understanding = "intermediate"

    def __init__(
        self,
        explore_start: float = 0.5,
        explore_decay: float = 0.8,
        max_shift: int = 3,
        exact_base: float = 0.3,
        exact_gain: float = 0.02,
    ) -> None:
        if not 0 <= explore_start <= 1:
            raise ValueError(f"explore_start must be in [0, 1], got {explore_start}")
        if not 0 < explore_decay <= 1:
            raise ValueError(f"explore_decay must be in (0, 1], got {explore_decay}")
        if not 0 <= exact_base <= 1:
            raise ValueError(f"exact_base must be in [0, 1], got {exact_base}")
        if exact_gain < 0:
            raise ValueError(f"exact_gain cannot be negative, got {exact_gain}")
        self.explore_start = explore_start
        self.explore_decay = explore_decay
        self.max_shift = max_shift
        self.exact_base = exact_base
        self.exact_gain = exact_gain

    def _explore_probability(self, history: List[RoundExperience]) -> float:
        probability = self.explore_start * self.explore_decay ** len(history)
        truthful_scores = [
            e.score for e in history if e.submitted == e.true_preference
        ]
        explore_scores = [
            e.score for e in history if e.submitted != e.true_preference
        ]
        if truthful_scores and explore_scores:
            if sum(truthful_scores) / len(truthful_scores) >= sum(
                explore_scores
            ) / len(explore_scores):
                # The data says honesty pays: cut exploration sharply.
                probability *= 0.5
            else:
                probability = min(1.0, probability * 1.5)
        return probability

    def submit(
        self,
        round_index: int,
        true_preference: Preference,
        history: List[RoundExperience],
        rng: random.Random,
    ) -> Preference:
        if rng.random() >= self._explore_probability(history):
            # Playing safe: stay inside the true window, revealing a
            # fraction of its width that grows as the game is understood —
            # the paper's subjects picked their *exact* true interval in
            # only 23.75% (Initial) to 37.5% (Cooperate) of rounds, with
            # the average revealed flexibility rising over the session
            # (Figure 9's upward trend).
            duration = true_preference.duration
            window = true_preference.window
            revealed = min(
                1.0,
                self.exact_base
                + self.exact_gain * round_index
                + rng.uniform(0.0, 0.4),
            )
            keep = duration + int(round(revealed * (window.length - duration)))
            if keep >= window.length:
                return true_preference
            start = rng.randint(window.start, window.end - keep)
            return Preference(Interval(start, start + keep), duration)
        duration = true_preference.duration
        window = true_preference.window
        if rng.random() < 0.5:
            # Shift the window away from the truth (a Theorem 2 misreport).
            shift = rng.choice([-1, 1]) * rng.randint(1, self.max_shift)
            return self._clamp_window(
                window.start + shift, window.end + shift, duration
            )
        # Broaden the window hoping for a better (cheaper) allocation.
        widen = rng.randint(1, self.max_shift)
        return self._clamp_window(window.start - widen, window.end + widen, duration)


class GoodSubject(SubjectModel):
    """The P7/P8 pattern: heavy early defection, exact truth afterwards.

    Args:
        switch_round: First round (0-based) of consistently truthful play;
            the paper's subjects switched around the Cooperate stage
            (round 8).
        explore_probability: Chance of misreporting before the switch.
    """

    understanding = "good"

    def __init__(self, switch_round: int = 8, explore_probability: float = 0.55) -> None:
        if switch_round < 0:
            raise ValueError(f"switch_round cannot be negative, got {switch_round}")
        if not 0 <= explore_probability <= 1:
            raise ValueError(
                f"explore_probability must be in [0, 1], got {explore_probability}"
            )
        self.switch_round = switch_round
        self.explore_probability = explore_probability

    def submit(
        self,
        round_index: int,
        true_preference: Preference,
        history: List[RoundExperience],
        rng: random.Random,
    ) -> Preference:
        if round_index >= self.switch_round:
            return true_preference
        if rng.random() < self.explore_probability:
            duration = true_preference.duration
            window = true_preference.window
            shift = rng.choice([-1, 1]) * rng.randint(2, 5)
            return self._clamp_window(
                window.start + shift, window.end + shift, duration
            )
        return true_preference


def default_subject_pool(rng: Optional[random.Random] = None) -> List[SubjectModel]:
    """The paper's 20-subject mix: 4 random, 14 learning, 2 well-understanding.

    Learning subjects get mildly heterogeneous exploration parameters so
    the pool is not 14 identical curves.
    """
    rng = rng if rng is not None else random.Random(0)
    pool: List[SubjectModel] = [RandomSubject() for _ in range(4)]
    for _ in range(14):
        pool.append(
            LearningSubject(
                explore_start=rng.uniform(0.45, 0.8),
                explore_decay=rng.uniform(0.65, 0.8),
                max_shift=rng.randint(2, 4),
            )
        )
    pool.extend([GoodSubject(), GoodSubject(switch_round=7)])
    return pool
