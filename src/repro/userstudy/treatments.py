"""The Section VII study design: two treatments, four sessions each.

Treatment 1 groups subjects (16 subjects across four sessions of four,
with six artificial agents per session).  Treatment 2 isolates one subject
per session with four artificial agents.  The paper's 20 subjects are
represented by the default behaviour pool (4 non-understanding, 14
learning, 2 well-understanding) dealt across the sessions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.mechanism import EnkiMechanism
from ..sim.parallel import map_tasks
from ..sim.rng import spawn_seed
from .game import GameSession, SessionResult, SubjectRoundLog
from .subjects import SubjectModel, default_subject_pool

#: Artificial agents per Treatment 1 session.
T1_AGENTS = 6

#: Artificial agents per Treatment 2 session.
T2_AGENTS = 4

#: Subjects per Treatment 1 session (16 subjects over four sessions).
T1_SUBJECTS_PER_SESSION = 4


@dataclass
class StudySubjectRecord:
    """One subject's identity and full 16-round log across the study."""

    study_subject_id: int
    treatment: int
    session_index: int
    understanding: str
    logs: List[SubjectRoundLog] = field(default_factory=list)


@dataclass
class StudyResult:
    """All 20 subjects' records (the Tables II-IV / Figures 8-9 input)."""

    subjects: List[StudySubjectRecord]

    def by_treatment(self, treatment: int) -> List[StudySubjectRecord]:
        return [s for s in self.subjects if s.treatment == treatment]

    def understanding_group(self, understanding: str) -> List[StudySubjectRecord]:
        return [s for s in self.subjects if s.understanding == understanding]


def _play_session(
    task: Tuple[GameSession, int, int, int],
) -> SessionResult:
    """Play one pre-seeded session (module-level for the parallel runtime)."""
    session, treatment, session_index, session_seed = task
    return session.play(
        treatment=treatment, session_index=session_index, seed=session_seed
    )


def run_study(
    subject_pool: Optional[Sequence[SubjectModel]] = None,
    mechanism: Optional[EnkiMechanism] = None,
    seed: Optional[int] = None,
    workers: Optional[int] = 1,
) -> StudyResult:
    """Run the full two-treatment study once.

    Args:
        subject_pool: Exactly 20 subject models; the paper's default mix
            when omitted.  The first 16 go to Treatment 1 (four sessions of
            four), the last 4 to Treatment 2 (one per session).
        mechanism: Enki instance shared by all sessions.
        seed: Master seed for the whole study.
        workers: Worker processes for the eight-session fan-out (``1`` =
            serial).  Every session seed is drawn from the master stream
            before any session plays, in the same order as a serial run,
            so results are identical across worker counts.

    Returns:
        Per-subject records with per-round logs.
    """
    rng = random.Random(seed)
    pool = (
        list(subject_pool)
        if subject_pool is not None
        else default_subject_pool(random.Random(spawn_seed(rng)))
    )
    if len(pool) != 20:
        raise ValueError(f"the study design needs exactly 20 subjects, got {len(pool)}")
    # Deal subjects randomly into sessions, as recruitment would.
    order = list(range(20))
    rng.shuffle(order)

    # Build every session up front, drawing seeds in serial order; the
    # plays themselves are independent once seeded, so they can fan out.
    tasks: List[Tuple[GameSession, int, int, int]] = []
    t1_indices: List[List[int]] = []
    cursor = 0
    for session_index in range(4):
        indices = order[cursor:cursor + T1_SUBJECTS_PER_SESSION]
        cursor += T1_SUBJECTS_PER_SESSION
        t1_indices.append(indices)
        session = GameSession(
            [pool[i] for i in indices], n_agents=T1_AGENTS, mechanism=mechanism
        )
        tasks.append((session, 1, session_index, spawn_seed(rng)))
    t2_indices: List[int] = []
    for session_index in range(4):
        pool_index = order[cursor]
        cursor += 1
        t2_indices.append(pool_index)
        session = GameSession(
            [pool[pool_index]], n_agents=T2_AGENTS, mechanism=mechanism
        )
        tasks.append((session, 2, session_index, spawn_seed(rng)))

    results = map_tasks(_play_session, tasks, workers)

    subjects: List[StudySubjectRecord] = []
    for session_index in range(4):
        result = results[session_index]
        for local_index, pool_index in enumerate(t1_indices[session_index]):
            subjects.append(
                StudySubjectRecord(
                    study_subject_id=pool_index,
                    treatment=1,
                    session_index=session_index,
                    understanding=pool[pool_index].understanding,
                    logs=result.subject_logs(local_index),
                )
            )
    for session_index in range(4):
        result = results[4 + session_index]
        pool_index = t2_indices[session_index]
        subjects.append(
            StudySubjectRecord(
                study_subject_id=pool_index,
                treatment=2,
                session_index=session_index,
                understanding=pool[pool_index].understanding,
                logs=result.subject_logs(0),
            )
        )

    subjects.sort(key=lambda record: record.study_subject_id)
    return StudyResult(subjects=subjects)
