"""The Section VII study design: two treatments, four sessions each.

Treatment 1 groups subjects (16 subjects across four sessions of four,
with six artificial agents per session).  Treatment 2 isolates one subject
per session with four artificial agents.  The paper's 20 subjects are
represented by the default behaviour pool (4 non-understanding, 14
learning, 2 well-understanding) dealt across the sessions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.mechanism import EnkiMechanism
from ..sim.rng import spawn_seed
from .game import GameSession, SessionResult, SubjectRoundLog
from .subjects import SubjectModel, default_subject_pool

#: Artificial agents per Treatment 1 session.
T1_AGENTS = 6

#: Artificial agents per Treatment 2 session.
T2_AGENTS = 4

#: Subjects per Treatment 1 session (16 subjects over four sessions).
T1_SUBJECTS_PER_SESSION = 4


@dataclass
class StudySubjectRecord:
    """One subject's identity and full 16-round log across the study."""

    study_subject_id: int
    treatment: int
    session_index: int
    understanding: str
    logs: List[SubjectRoundLog] = field(default_factory=list)


@dataclass
class StudyResult:
    """All 20 subjects' records (the Tables II-IV / Figures 8-9 input)."""

    subjects: List[StudySubjectRecord]

    def by_treatment(self, treatment: int) -> List[StudySubjectRecord]:
        return [s for s in self.subjects if s.treatment == treatment]

    def understanding_group(self, understanding: str) -> List[StudySubjectRecord]:
        return [s for s in self.subjects if s.understanding == understanding]


def run_study(
    subject_pool: Optional[Sequence[SubjectModel]] = None,
    mechanism: Optional[EnkiMechanism] = None,
    seed: Optional[int] = None,
) -> StudyResult:
    """Run the full two-treatment study once.

    Args:
        subject_pool: Exactly 20 subject models; the paper's default mix
            when omitted.  The first 16 go to Treatment 1 (four sessions of
            four), the last 4 to Treatment 2 (one per session).
        mechanism: Enki instance shared by all sessions.
        seed: Master seed for the whole study.

    Returns:
        Per-subject records with per-round logs.
    """
    rng = random.Random(seed)
    pool = (
        list(subject_pool)
        if subject_pool is not None
        else default_subject_pool(random.Random(spawn_seed(rng)))
    )
    if len(pool) != 20:
        raise ValueError(f"the study design needs exactly 20 subjects, got {len(pool)}")
    # Deal subjects randomly into sessions, as recruitment would.
    order = list(range(20))
    rng.shuffle(order)

    subjects: List[StudySubjectRecord] = []
    cursor = 0
    for session_index in range(4):
        indices = order[cursor:cursor + T1_SUBJECTS_PER_SESSION]
        cursor += T1_SUBJECTS_PER_SESSION
        models = [pool[i] for i in indices]
        session = GameSession(models, n_agents=T1_AGENTS, mechanism=mechanism)
        result = session.play(
            treatment=1, session_index=session_index, seed=spawn_seed(rng)
        )
        for local_index, pool_index in enumerate(indices):
            subjects.append(
                StudySubjectRecord(
                    study_subject_id=pool_index,
                    treatment=1,
                    session_index=session_index,
                    understanding=pool[pool_index].understanding,
                    logs=result.subject_logs(local_index),
                )
            )

    for session_index in range(4):
        pool_index = order[cursor]
        cursor += 1
        session = GameSession(
            [pool[pool_index]], n_agents=T2_AGENTS, mechanism=mechanism
        )
        result = session.play(
            treatment=2, session_index=session_index, seed=spawn_seed(rng)
        )
        subjects.append(
            StudySubjectRecord(
                study_subject_id=pool_index,
                treatment=2,
                session_index=session_index,
                understanding=pool[pool_index].understanding,
                logs=result.subject_logs(0),
            )
        )

    subjects.sort(key=lambda record: record.study_subject_id)
    return StudyResult(subjects=subjects)
