"""Shared fixtures: the paper's worked examples and small random worlds."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.intervals import Interval
from repro.core.mechanism import EnkiMechanism
from repro.core.types import HouseholdType, Neighborhood, Preference
from repro.pricing.quadratic import QuadraticPricing
from repro.sim.profiles import ProfileGenerator, neighborhood_from_profiles


@pytest.fixture
def pricing() -> QuadraticPricing:
    """The paper's sigma = 0.3 quadratic pricing."""
    return QuadraticPricing(sigma=0.3)


@pytest.fixture
def mechanism() -> EnkiMechanism:
    """Enki with the paper's Section VI parameters (k=1, xi=1.2)."""
    return EnkiMechanism(seed=7)


@pytest.fixture
def example2_neighborhood() -> Neighborhood:
    """Section IV Example 2: A(18,19,1); B, C (18,20,1)."""
    return Neighborhood.of(
        HouseholdType("A", Preference.of(18, 19, 1), 5.0),
        HouseholdType("B", Preference.of(18, 20, 1), 5.0),
        HouseholdType("C", Preference.of(18, 20, 1), 5.0),
    )


@pytest.fixture
def example3_neighborhood() -> Neighborhood:
    """Section IV Example 3: A(16,18,2); B, C (18,21,2)."""
    return Neighborhood.of(
        HouseholdType("A", Preference.of(16, 18, 2), 5.0),
        HouseholdType("B", Preference.of(18, 21, 2), 5.0),
        HouseholdType("C", Preference.of(18, 21, 2), 5.0),
    )


@pytest.fixture
def small_random_neighborhood() -> Neighborhood:
    """Eight §VI-distributed households, wide windows as truths."""
    generator = ProfileGenerator()
    profiles = generator.sample_population(np.random.default_rng(5), 8)
    return neighborhood_from_profiles(profiles, "wide")


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)
