"""Frozen pre-acceleration copy of the exact solver (test reference only).

This is the seed ``BranchAndBoundAllocator`` exactly as committed before the
SoA/incremental-kernel PR, kept so property and regression tests can assert
the accelerated solver matches its allocations, costs, ``proven_optimal``
verdicts and node counts.  Do not optimize this file.

This stands in for the paper's IBM ILOG CPLEX V12.4 MIQP solver (Section
VI-A).  It solves exactly the same discrete program (Eq. 2) to proven
optimality:

* **Branching**: households sorted fewest-placements-first (rigid
  households prune earliest); children visited best-marginal-cost-first,
  with sibling cutoff once a child's partial cost already exceeds the
  incumbent (valid because prices are increasing in load).
* **Bounding**: writing the cost of any completion as
  ``sigma * sum((l_h + X_h)**2)`` with ``X`` the remaining load, the
  expansion ``sum(l**2) + 2*sum(l*X) + sum(X**2)`` is bounded below by
  combining (a) the exact minimum of the linear term — fill the cheapest
  hours of the remaining windows' support first — with (b) two integral
  lower bounds on ``sum(X**2)``: the Cauchy-Schwarz floor ``R**2/support``
  and the per-household self term ``sum_j r_j**2 * v_j`` (valid because
  cross terms of integral blocks are non-negative).  If that does not prune,
  an exact capacitated water-filling bound (the fractional minimizer of the
  whole quadratic) gets a second chance.
* **Symmetry breaking**: households with identical (window, duration,
  rating) are interchangeable, so their begin slots are forced to be
  nondecreasing.
* **Warm start**: the greedy allocation refined by hill climbing provides
  the initial incumbent.
* **Anytime**: optional time and node limits return the best incumbent with
  ``proven_optimal=False`` instead of running forever, preserving the
  Figure 6 story (the exact solver's cost explodes with n) without hanging
  the harness.
"""

from __future__ import annotations

import random
import time
from typing import List, Optional, Tuple

from repro.core.intervals import HOURS_PER_DAY, Interval
from repro.core.types import AllocationMap
from repro.pricing.quadratic import QuadraticPricing
from repro.allocation.base import AllocationItem, AllocationProblem, AllocationResult, Allocator
from repro.allocation.greedy import GreedyFlexibilityAllocator
from repro.allocation.local_search import improve_allocation
from repro.allocation.relaxation import transportation_bound, transportation_solution

#: How many nodes between time-limit checks.
_TIME_CHECK_STRIDE = 512

#: Depths at which the search may consult the transportation relaxation.
_TRANSPORT_DEPTH = 2

#: Slack subtracted from bounds before pruning, guarding float drift.
_EPS = 1e-9


class SearchBudgetExceeded(Exception):
    """Internal signal: stop the search and keep the incumbent."""


class IncumbentMatchesBound(Exception):
    """Internal signal: the incumbent met the root bound; search is over."""


class ReferenceBranchAndBoundAllocator(Allocator):
    """Exact MIQP solver for Eq. 2 (see module docstring).

    Args:
        time_limit_s: Wall-clock budget; ``None`` means unlimited.
        node_limit: Maximum nodes to expand; ``None`` means unlimited.
        warm_start: Seed the incumbent with greedy + hill climbing.
        gap: Relative MIP gap: the search may discard subtrees that cannot
            improve the incumbent by more than this fraction, so a
            completed search proves the answer within ``gap`` of optimal
            (0.0 proves exact optimality).  The same knob CPLEX exposes.
        seed: Randomness for the warm start only; the search itself is
            deterministic.
    """

    name = "optimal-bnb-reference"

    def __init__(
        self,
        time_limit_s: Optional[float] = 60.0,
        node_limit: Optional[int] = None,
        warm_start: bool = True,
        gap: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        if time_limit_s is not None and time_limit_s <= 0:
            raise ValueError(f"time limit must be positive, got {time_limit_s}")
        if node_limit is not None and node_limit <= 0:
            raise ValueError(f"node limit must be positive, got {node_limit}")
        if not 0.0 <= gap < 1.0:
            raise ValueError(f"gap must be in [0, 1), got {gap}")
        self.time_limit_s = time_limit_s
        self.node_limit = node_limit
        self.warm_start = warm_start
        self.gap = gap
        self._seed = seed

    def solve(
        self, problem: AllocationProblem, rng: Optional[random.Random] = None
    ) -> AllocationResult:
        started_at = time.perf_counter()
        rng = rng if rng is not None else random.Random(self._seed)
        if not isinstance(problem.pricing, QuadraticPricing):
            raise TypeError(
                "the exact solver bounds require quadratic pricing; got "
                f"{type(problem.pricing).__name__}"
            )
        sigma = problem.pricing.sigma

        if not problem.items:
            return self._finish(problem, {}, started_at, proven_optimal=True)

        # Branch order: fewest placements first; identical specs adjacent so
        # the symmetry constraint below applies.
        items: List[AllocationItem] = sorted(
            problem.items,
            key=lambda it: (
                it.n_placements,
                it.window.start,
                it.window.end,
                it.duration,
                it.rating_kw,
                it.household_id,
            ),
        )
        n = len(items)

        # Suffix data for the bounds, per depth k (households k..n-1 remain):
        #   energy R_k, per-hour capacity, support hours, support size and
        #   the integral self term sum_j r_j^2 v_j.
        suffix_energy = [0.0] * (n + 1)
        suffix_self = [0.0] * (n + 1)
        suffix_caps: List[List[float]] = [[0.0] * HOURS_PER_DAY for _ in range(n + 1)]
        for k in range(n - 1, -1, -1):
            item = items[k]
            suffix_energy[k] = suffix_energy[k + 1] + item.energy_kwh
            suffix_self[k] = suffix_self[k + 1] + item.rating_kw**2 * item.duration
            caps = list(suffix_caps[k + 1])
            for h in range(item.window.start, item.window.end):
                caps[h] += item.rating_kw
            suffix_caps[k] = caps
        suffix_support: List[List[int]] = [
            [h for h in range(HOURS_PER_DAY) if caps[h] > 0.0] for caps in suffix_caps
        ]

        # Integral relaxation data: when every rating is equal, any feasible
        # completion is a set of 1-hour bricks of height r — suffix_units
        # bricks in total, at most suffix_counts[k][h] of them in hour h
        # (one per remaining household covering h).
        uniform_rating: Optional[float] = items[0].rating_kw
        if any(item.rating_kw != uniform_rating for item in items):
            uniform_rating = None
        suffix_units = [0] * (n + 1)
        suffix_counts: List[List[int]] = [[0] * HOURS_PER_DAY for _ in range(n + 1)]
        for k in range(n - 1, -1, -1):
            item = items[k]
            suffix_units[k] = suffix_units[k + 1] + item.duration
            counts = list(suffix_counts[k + 1])
            for h in range(item.window.start, item.window.end):
                counts[h] += 1
            suffix_counts[k] = counts

        # Pairwise minimum-overlap floor on the cross terms of sum(X**2):
        # two blocks of lengths v, v' confined to the hull of their windows
        # (length L) overlap at least v + v' - L hours, whatever happens.
        suffix_cross = [0.0] * (n + 1)
        for k in range(n - 1, -1, -1):
            item = items[k]
            pair_sum = 0.0
            for other in items[k + 1:]:
                hull = max(item.window.end, other.window.end) - min(
                    item.window.start, other.window.start
                )
                forced = item.duration + other.duration - hull
                if forced > 0:
                    pair_sum += item.rating_kw * other.rating_kw * forced
            suffix_cross[k] = suffix_cross[k + 1] + pair_sum

        # Same-spec predecessor index for symmetry breaking.
        same_as_prev = [
            k > 0
            and items[k].window == items[k - 1].window
            and items[k].duration == items[k - 1].duration
            and items[k].rating_kw == items[k - 1].rating_kw
            for k in range(n)
        ]

        # Warm-start incumbent.
        incumbent: Optional[List[int]] = None
        incumbent_cost = float("inf")
        if self.warm_start:
            seed_alloc = GreedyFlexibilityAllocator().solve(problem, rng).allocation
            seed_alloc = improve_allocation(problem, seed_alloc, rng)
            incumbent = [seed_alloc[item.household_id].start for item in items]
            incumbent_cost = problem.cost(seed_alloc)

        state = _SearchState(
            items=items,
            sigma=sigma,
            suffix_energy=suffix_energy,
            suffix_self=suffix_self,
            suffix_cross=suffix_cross,
            suffix_caps=suffix_caps,
            suffix_support=suffix_support,
            suffix_units=suffix_units,
            suffix_counts=suffix_counts,
            uniform_rating=uniform_rating,
            same_as_prev=same_as_prev,
            incumbent=incumbent,
            incumbent_cost=incumbent_cost,
            gap=self.gap,
            deadline=(
                started_at + self.time_limit_s if self.time_limit_s is not None else None
            ),
            node_limit=self.node_limit,
        )
        # Root certificate: the exact transportation relaxation (windows
        # kept, contiguity dropped) often matches the warm-start incumbent
        # to within one cost quantum, proving optimality with zero search.
        root_lower_bound: Optional[float] = None
        if uniform_rating is not None and incumbent is not None:
            root_lower_bound, bricks = transportation_solution(
                loads=[0.0] * HOURS_PER_DAY,
                windows=[list(range(it.window.start, it.window.end)) for it in items],
                durations=[it.duration for it in items],
                rating=uniform_rating,
                sigma=sigma,
            )
            quantum = sigma * uniform_rating * uniform_rating
            if root_lower_bound < incumbent_cost - quantum + 1e-6:
                # Round the relaxed solution into a second warm start: give
                # each household the contiguous block covering the most of
                # its relaxed brick hours, then hill-climb.
                rounded: AllocationMap = {}
                for item, hours in zip(items, bricks):
                    best_start, best_overlap = item.window.start, -1
                    for start in range(
                        item.window.start, item.window.end - item.duration + 1
                    ):
                        overlap = sum(
                            1 for h in hours if start <= h < start + item.duration
                        )
                        if overlap > best_overlap:
                            best_start, best_overlap = start, overlap
                    rounded[item.household_id] = Interval(
                        best_start, best_start + item.duration
                    )
                rounded = improve_allocation(problem, rounded, rng)
                rounded_cost = problem.cost(rounded)
                if rounded_cost < incumbent_cost:
                    incumbent = [rounded[item.household_id].start for item in items]
                    incumbent_cost = rounded_cost
                    state.incumbent = list(incumbent)
                    state.incumbent_cost = incumbent_cost
            if root_lower_bound >= incumbent_cost - quantum + 1e-6:
                allocation = {
                    item.household_id: Interval(start, start + item.duration)
                    for item, start in zip(items, incumbent)
                }
                return self._finish(
                    problem,
                    allocation,
                    started_at,
                    proven_optimal=True,
                    nodes_explored=0,
                    lower_bound=root_lower_bound,
                )

        state.root_lower_bound = root_lower_bound
        proven = True
        try:
            state.search([0.0] * HOURS_PER_DAY, 0.0, 0, [0] * n)
        except SearchBudgetExceeded:
            proven = False
        except IncumbentMatchesBound:
            pass

        if state.incumbent is None:
            raise RuntimeError("branch and bound ended without any feasible incumbent")
        allocation: AllocationMap = {
            item.household_id: Interval(start, start + item.duration)
            for item, start in zip(items, state.incumbent)
        }
        return self._finish(
            problem,
            allocation,
            started_at,
            proven_optimal=proven,
            nodes_explored=state.nodes,
            lower_bound=state.incumbent_cost if proven else root_lower_bound,
        )


class _SearchState:
    """Mutable depth-first search state shared across recursion frames."""

    def __init__(
        self,
        items: List[AllocationItem],
        sigma: float,
        suffix_energy: List[float],
        suffix_self: List[float],
        suffix_cross: List[float],
        suffix_caps: List[List[float]],
        suffix_support: List[List[int]],
        suffix_units: List[int],
        suffix_counts: List[List[int]],
        uniform_rating: Optional[float],
        same_as_prev: List[bool],
        incumbent: Optional[List[int]],
        incumbent_cost: float,
        gap: float,
        deadline: Optional[float],
        node_limit: Optional[int],
    ) -> None:
        self.items = items
        self.sigma = sigma
        self.suffix_energy = suffix_energy
        self.suffix_self = suffix_self
        self.suffix_cross = suffix_cross
        self.suffix_caps = suffix_caps
        self.suffix_support = suffix_support
        self.suffix_units = suffix_units
        self.suffix_counts = suffix_counts
        self.uniform_rating = uniform_rating
        self.same_as_prev = same_as_prev
        self.incumbent = list(incumbent) if incumbent is not None else None
        self.incumbent_cost = incumbent_cost
        self.gap = gap
        self.deadline = deadline
        self.node_limit = node_limit
        self.nodes = 0
        self.root_lower_bound: Optional[float] = None
        # Transposition table: the best completion from a node depends only
        # on (depth, loads over the hours the remaining windows can touch),
        # so arriving at a seen state at equal-or-higher cost is futile.
        self.table: dict = {}
        self.quantum = (
            sigma * uniform_rating * uniform_rating
            if uniform_rating is not None
            else 0.0
        )
        # Unpack item attributes into parallel lists: attribute access in
        # the hot loop is measurably slower than list indexing.
        self._win_start = [item.window.start for item in items]
        self._win_end = [item.window.end for item in items]
        self._duration = [item.duration for item in items]
        self._rating = [item.rating_kw for item in items]

    def _prune_threshold(self) -> float:
        """Bounds at or above this cannot improve enough to matter.

        With one common rating r every achievable cost is a multiple of
        ``sigma * r**2`` (loads are multiples of r, so ``sum(l**2)`` is an
        integer times r**2).  An improvement therefore means improving by a
        full quantum, which lets the search prune the large plateaus of
        cost-equivalent schedules these instances exhibit.
        """
        slack = max(self.quantum - 1e-6, self.incumbent_cost * self.gap, _EPS)
        return self.incumbent_cost - slack

    def _check_budget(self) -> None:
        if self.node_limit is not None and self.nodes >= self.node_limit:
            raise SearchBudgetExceeded
        if (
            self.deadline is not None
            and self.nodes % _TIME_CHECK_STRIDE == 0
            and time.perf_counter() > self.deadline
        ):
            raise SearchBudgetExceeded

    def _bound(self, loads: List[float], cost: float, depth: int) -> float:
        """Lower bound on the best completion cost from this node.

        First the cheap combined bound (exact linear fill + integral floors
        on ``sum(X**2)``); only if that fails to prune does the exact
        capacitated water-filling relaxation run.
        """
        energy = self.suffix_energy[depth]
        if energy <= 0.0:
            return cost
        sigma = self.sigma
        caps = self.suffix_caps[depth]
        support = self.suffix_support[depth]

        # Exact minimum of the linear term: fill cheapest hours first.
        hours = sorted((loads[h], caps[h]) for h in support)
        linear = 0.0
        remaining = energy
        for load, cap in hours:
            take = cap if cap < remaining else remaining
            linear += load * take
            remaining -= take
            if remaining <= 0.0:
                break
        x_square_floor = max(
            energy * energy / len(support),
            self.suffix_self[depth] + 2.0 * self.suffix_cross[depth],
        )
        cheap = cost + sigma * (2.0 * linear + x_square_floor)
        if cheap >= self._prune_threshold():
            return cheap

        if self.uniform_rating is not None:
            # Integral water-filling: with one common rating r, any feasible
            # completion is a multiset of 1-hour height-r bricks, at most one
            # per (remaining household covering h, hour h).  Greedily taking
            # the cheapest marginal brick is exact for this separable convex
            # relaxation and already includes every r**2 self term, making it
            # far tighter than the fractional bound.
            rating = self.uniform_rating
            two_r = 2.0 * rating
            two_r2 = 2.0 * rating * rating
            counts = self.suffix_counts[depth]
            marginals = [
                two_r * loads[h] + rating * rating if counts[h] else float("inf")
                for h in range(len(loads))
            ]
            remaining_counts = list(counts)
            acc = 0.0
            for _ in range(self.suffix_units[depth]):
                h = min(range(len(marginals)), key=marginals.__getitem__)
                acc += marginals[h]
                remaining_counts[h] -= 1
                if remaining_counts[h] == 0:
                    marginals[h] = float("inf")
                else:
                    marginals[h] += two_r2
            integral = cost + sigma * acc
            best = integral if integral > cheap else cheap
            if best >= self._prune_threshold() or depth > _TRANSPORT_DEPTH:
                return best
            # Last resort near the root: the exact transportation
            # relaxation (windows kept, contiguity dropped).  Expensive
            # (~tens of ms) but it can close subtrees no cheaper bound can.
            items = self.items[depth:]
            transport = transportation_bound(
                loads=list(loads),
                windows=[
                    list(range(it.window.start, it.window.end)) for it in items
                ],
                durations=[it.duration for it in items],
                rating=rating,
                sigma=sigma,
            )
            return transport if transport > best else best

        # Exact capacitated water-filling: the fractional minimizer of
        # 2*sum(l*x) + sum(x**2) subject to sum(x) = R, 0 <= x <= c.
        # Sweep the water level through its breakpoints (hour activates at
        # l_h, saturates at l_h + c_h); volume grows linearly in between.
        events: List[Tuple[float, float]] = []
        for load, cap in hours:
            events.append((load, 1.0))
            events.append((load + cap, -1.0))
        events.sort()
        level = events[0][0]
        volume = 0.0
        slope = 0.0
        index = 0
        target = energy
        while index < len(events):
            next_level = events[index][0]
            if slope > 0.0 and volume + slope * (next_level - level) >= target:
                break
            volume += slope * (next_level - level)
            level = next_level
            while index < len(events) and events[index][0] == next_level:
                slope += events[index][1]
                index += 1
        if slope > 0.0:
            level += (target - volume) / slope
        quad = 0.0
        for load, cap in hours:
            x = level - load
            if x <= 0.0:
                continue
            if x > cap:
                x = cap
            quad += x * (2.0 * load + x)
        waterfill = cost + sigma * quad
        return waterfill if waterfill > cheap else cheap

    def search(
        self, loads: List[float], cost: float, depth: int, starts: List[int]
    ) -> None:
        """Expand the node at ``depth`` with partial ``loads``/``cost``."""
        self.nodes += 1
        self._check_budget()

        if depth == len(self.items):
            if cost < self.incumbent_cost - 1e-12:
                self.incumbent_cost = cost
                self.incumbent = list(starts)
                if (
                    self.root_lower_bound is not None
                    and self.root_lower_bound > cost - self.quantum + 1e-6
                ):
                    # Nothing can beat the incumbent by a full cost quantum:
                    # the root relaxation certifies it as optimal.
                    raise IncumbentMatchesBound
            return

        if self._bound(loads, cost, depth) >= self._prune_threshold():
            return

        key = (depth, tuple(loads[h] for h in self.suffix_support[depth]))
        seen = self.table.get(key)
        if seen is not None and seen <= cost + 1e-9:
            return
        if len(self.table) >= 4_000_000:
            self.table.clear()
        self.table[key] = cost

        rating = self._rating[depth]
        duration = self._duration[depth]
        min_start = self._win_start[depth]
        if self.same_as_prev[depth]:
            prev = starts[depth - 1]
            if prev > min_start:
                min_start = prev
        last_start = self._win_end[depth] - duration

        # Marginal cost of each placement via a sliding-window block sum;
        # visit children cheapest-first so good incumbents arrive early.
        self_term = sigma_rr = self.sigma * rating * rating * duration
        two_sigma_r = 2.0 * self.sigma * rating
        block_load = 0.0
        for h in range(min_start, min_start + duration):
            block_load += loads[h]
        candidates: List[Tuple[float, int]] = []
        start = min_start
        while True:
            candidates.append((two_sigma_r * block_load + self_term, start))
            if start == last_start:
                break
            block_load += loads[start + duration] - loads[start]
            start += 1
        candidates.sort()

        threshold = self._prune_threshold()
        for delta, start in candidates:
            child_cost = cost + delta
            if child_cost >= threshold:
                # Children are sorted by delta and any completion only adds
                # cost, so later siblings cannot win either.
                break
            for h in range(start, start + duration):
                loads[h] += rating
            starts[depth] = start
            self.search(loads, child_cost, depth + 1, starts)
            for h in range(start, start + duration):
                loads[h] -= rating
