"""Unit tests for household agents, behaviours, ECC and the controller."""

import random

import pytest

from repro.agents.behavior import (
    FixedReportBehavior,
    MisreportBehavior,
    NarrowingBehavior,
    StubbornBehavior,
    TruthfulBehavior,
)
from repro.agents.ecc import EccBehavior, EccUnit
from repro.agents.forecasting import (
    EwmaForecaster,
    HistogramForecaster,
    backtest_accuracy,
)
from repro.agents.household import HouseholdAgent, HouseholdDayLog
from repro.agents.neighborhood import NeighborhoodController
from repro.core.intervals import Interval
from repro.core.mechanism import EnkiMechanism
from repro.core.types import HouseholdType, Preference, Report


def _household(hid="A", begin=18, end=22, duration=2):
    return HouseholdType(hid, Preference.of(begin, end, duration), 5.0)


class TestBehaviors:
    def test_truthful_reports_truth(self, rng):
        hh = _household()
        report = TruthfulBehavior().report(0, hh, rng)
        assert report.preference == hh.true_preference

    def test_truthful_follows_in_window_allocation(self, rng):
        hh = _household()
        consumed = TruthfulBehavior().consume(
            0, hh, Report("A", hh.true_preference), Interval(19, 21), rng
        )
        assert consumed == Interval(19, 21)

    def test_misreport_shifts_window(self, rng):
        hh = _household()
        behavior = MisreportBehavior(shift=-4)
        report = behavior.report(0, hh, rng)
        assert report.preference.begin == 14
        assert report.preference.duration == hh.duration

    def test_misreport_clamps_to_day(self, rng):
        hh = _household(begin=0, end=4)
        report = MisreportBehavior(shift=-5).report(0, hh, rng)
        assert report.preference.begin >= 0

    def test_misreporter_defects_back_into_true_window(self, rng):
        hh = _household(begin=18, end=20, duration=2)
        behavior = MisreportBehavior(shift=-4)
        consumed = behavior.consume(
            0, hh, Report("A", Preference.of(14, 16, 2)), Interval(14, 16), rng
        )
        assert consumed == Interval(18, 20)

    def test_narrowing_stays_inside_truth(self, rng):
        hh = _household(begin=16, end=24, duration=2)
        behavior = NarrowingBehavior(keep_hours=3)
        for _ in range(20):
            report = behavior.report(0, hh, rng)
            assert hh.true_preference.window.contains(report.preference.window)
            assert report.preference.window.length == 3

    def test_fixed_report(self, rng):
        hh = _household()
        behavior = FixedReportBehavior(Preference.of(10, 14, 2))
        assert behavior.report(0, hh, rng).preference.begin == 10

    def test_fixed_report_duration_must_match(self, rng):
        hh = _household()
        behavior = FixedReportBehavior(Preference.of(10, 14, 3))
        with pytest.raises(ValueError):
            behavior.report(0, hh, rng)

    def test_stubborn_ignores_allocation(self, rng):
        hh = _household(begin=18, end=22, duration=2)
        behavior = StubbornBehavior()
        consumed = behavior.consume(
            0, hh, Report("A", hh.true_preference), Interval(20, 22), rng
        )
        assert consumed == Interval(18, 20)


class TestForecasting:
    def test_histogram_learns_stable_pattern(self):
        forecaster = HistogramForecaster(margin=1)
        for _ in range(20):
            forecaster.update(18, 2)
        predicted = forecaster.predict()
        assert predicted.duration == 2
        assert predicted.window.contains_slot(18)

    def test_histogram_quantile_window_covers_spread(self):
        forecaster = HistogramForecaster(low_quantile=0.0, high_quantile=1.0, margin=0)
        for start in (16, 17, 18, 19, 20):
            forecaster.update(start, 2)
        predicted = forecaster.predict()
        assert predicted.window.start <= 16
        assert predicted.window.end >= 22

    def test_predict_before_data_raises(self):
        with pytest.raises(RuntimeError):
            HistogramForecaster().predict()
        with pytest.raises(RuntimeError):
            EwmaForecaster().predict()

    def test_ewma_tracks_shift(self):
        forecaster = EwmaForecaster(alpha=0.5, half_width=1)
        for _ in range(10):
            forecaster.update(10, 2)
        for _ in range(10):
            forecaster.update(20, 2)
        predicted = forecaster.predict()
        assert predicted.window.contains_slot(19) or predicted.window.contains_slot(20)

    def test_invalid_observations_rejected(self):
        forecaster = HistogramForecaster()
        with pytest.raises(ValueError):
            forecaster.update(24, 2)
        with pytest.raises(ValueError):
            forecaster.update(10, 0)

    def test_backtest_accuracy_on_stable_history(self):
        history = [(18, 2)] * 15
        accuracy = backtest_accuracy(HistogramForecaster(), history)
        assert accuracy == pytest.approx(1.0)

    def test_backtest_empty_history(self):
        assert backtest_accuracy(HistogramForecaster(), []) == 0.0


class TestEcc:
    def test_cold_start_uses_true_preference(self):
        ecc = EccUnit("A")
        report = ecc.report(true_preference=Preference.of(18, 22, 2))
        assert report.preference == Preference.of(18, 22, 2)

    def test_cold_start_uses_fallback(self):
        ecc = EccUnit("A", fallback=Preference.of(10, 14, 2))
        assert ecc.report().preference.begin == 10

    def test_cold_start_without_anything_raises(self):
        with pytest.raises(RuntimeError):
            EccUnit("A").report()

    def test_learns_from_observations(self):
        ecc = EccUnit("A")
        for _ in range(10):
            ecc.observe(Interval(18, 20))
        report = ecc.report()
        assert report.preference.window.contains_slot(18)

    def test_ecc_behavior_enforces_owner(self, rng):
        behavior = EccBehavior(EccUnit("A"))
        wrong = _household("B")
        with pytest.raises(ValueError):
            behavior.report(0, wrong, rng)

    def test_ecc_behavior_clamps_duration_to_truth(self, rng):
        ecc = EccUnit("A")
        for _ in range(6):
            ecc.observe(Interval(18, 21))  # 3-hour observations
        behavior = EccBehavior(ecc)
        hh = _household("A", begin=16, end=24, duration=2)
        report = behavior.report(0, hh, rng)
        assert report.preference.duration == 2


class TestHouseholdAgentAndController:
    def test_agent_accumulates_history(self):
        agent = HouseholdAgent(_household())
        agent.record(
            HouseholdDayLog(
                day=0,
                report=Report("A", _household().true_preference),
                allocation=Interval(18, 20),
                consumption=Interval(18, 20),
                payment=1.0,
                utility=4.0,
            )
        )
        agent.record(
            HouseholdDayLog(
                day=1,
                report=Report("A", _household().true_preference),
                allocation=Interval(18, 20),
                consumption=Interval(20, 22),
                payment=2.0,
                utility=3.0,
            )
        )
        assert agent.total_utility() == pytest.approx(7.0)
        assert agent.defection_rate() == pytest.approx(0.5)

    def test_controller_runs_days_and_logs(self):
        agents = [
            HouseholdAgent(_household("A", 16, 20)),
            HouseholdAgent(_household("B", 18, 22)),
            HouseholdAgent(_household("C", 17, 23), StubbornBehavior()),
        ]
        controller = NeighborhoodController(agents, EnkiMechanism())
        outcomes = controller.run_days(3, seed=0)
        assert len(outcomes) == 3
        for agent in agents:
            assert len(agent.history) == 3

    def test_controller_with_ecc_agent_learns(self):
        ecc_agent = HouseholdAgent(
            _household("A", 16, 22), EccBehavior(EccUnit("A"))
        )
        controller = NeighborhoodController(
            [ecc_agent, HouseholdAgent(_household("B", 18, 22))],
            EnkiMechanism(),
        )
        controller.run_days(4, seed=1)
        assert ecc_agent.behavior.ecc.forecaster.n_observations == 4

    def test_duplicate_agents_rejected(self):
        with pytest.raises(ValueError):
            NeighborhoodController(
                [HouseholdAgent(_household("A")), HouseholdAgent(_household("A"))]
            )

    def test_empty_controller_rejected(self):
        with pytest.raises(ValueError):
            NeighborhoodController([])

    def test_invalid_days_rejected(self):
        controller = NeighborhoodController([HouseholdAgent(_household())])
        with pytest.raises(ValueError):
            controller.run_days(0)
