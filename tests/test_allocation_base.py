"""Unit tests for the allocation problem plumbing."""

import pytest

from repro.allocation.base import AllocationItem, AllocationProblem
from repro.core.intervals import Interval
from repro.core.mechanism import truthful_reports
from repro.core.types import HouseholdType, Neighborhood, Preference
from repro.pricing.quadratic import QuadraticPricing


def _problem(pricing):
    neighborhood = Neighborhood.of(
        HouseholdType("A", Preference.of(16, 20, 2), 5.0),
        HouseholdType("B", Preference.of(18, 21, 2), 5.0),
    )
    return AllocationProblem.from_reports(
        truthful_reports(neighborhood), neighborhood.households, pricing
    ), neighborhood


class TestAllocationItem:
    def test_placements_and_counts(self):
        item = AllocationItem("A", Interval(18, 22), 2, 2.0)
        assert item.n_placements == 3
        assert item.energy_kwh == 4.0
        assert item.placements() == (
            Interval(18, 20),
            Interval(19, 21),
            Interval(20, 22),
        )

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            AllocationItem("A", Interval(18, 22), 0, 2.0)

    def test_window_too_small_rejected(self):
        with pytest.raises(ValueError):
            AllocationItem("A", Interval(18, 19), 2, 2.0)

    def test_nonpositive_rating_rejected(self):
        with pytest.raises(ValueError):
            AllocationItem("A", Interval(18, 22), 2, 0.0)


class TestAllocationProblem:
    def test_from_reports(self, pricing):
        problem, _ = _problem(pricing)
        assert len(problem) == 2
        assert problem.search_space_size() == 3 * 2

    def test_duplicate_ids_rejected(self, pricing):
        item = AllocationItem("A", Interval(18, 22), 2, 2.0)
        with pytest.raises(ValueError):
            AllocationProblem(items=(item, item), pricing=pricing)

    def test_cost_evaluates_schedule(self, pricing):
        problem, _ = _problem(pricing)
        allocation = {"A": Interval(16, 18), "B": Interval(19, 21)}
        # Four distinct hours at 2 kW: 4 * 0.3 * 4.
        assert problem.cost(allocation) == pytest.approx(4.8)

    def test_feasibility_checks(self, pricing):
        problem, _ = _problem(pricing)
        assert problem.is_feasible({"A": Interval(16, 18), "B": Interval(18, 20)})
        assert not problem.is_feasible({"A": Interval(16, 18)})
        assert not problem.is_feasible(
            {"A": Interval(14, 16), "B": Interval(18, 20)}
        )
        assert not problem.is_feasible(
            {"A": Interval(16, 19), "B": Interval(18, 20)}
        )
