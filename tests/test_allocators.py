"""Unit tests for the allocator family (greedy, exact, local search, ...)."""

import random

import numpy as np
import pytest

from repro.allocation.base import AllocationProblem
from repro.allocation.exhaustive import ExhaustiveAllocator
from repro.allocation.greedy import (
    GreedyFlexibilityAllocator,
    predicted_flexibility_for_problem,
)
from repro.allocation.local_search import LocalSearchAllocator, improve_allocation
from repro.allocation.optimal import BranchAndBoundAllocator
from repro.allocation.random_alloc import EarliestAllocator, RandomAllocator
from repro.core.intervals import Interval
from repro.core.mechanism import truthful_reports
from repro.core.types import HouseholdType, Neighborhood, Preference
from repro.pricing.piecewise import TwoStepPricing
from repro.pricing.quadratic import QuadraticPricing
from repro.sim.profiles import ProfileGenerator, neighborhood_from_profiles


def _example3_problem(pricing):
    neighborhood = Neighborhood.of(
        HouseholdType("A", Preference.of(16, 18, 2), 5.0),
        HouseholdType("B", Preference.of(18, 21, 2), 5.0),
        HouseholdType("C", Preference.of(18, 21, 2), 5.0),
    )
    return AllocationProblem.from_reports(
        truthful_reports(neighborhood), neighborhood.households, pricing
    )


def _random_problem(pricing, n=8, seed=11):
    generator = ProfileGenerator()
    profiles = generator.sample_population(np.random.default_rng(seed), n)
    neighborhood = neighborhood_from_profiles(profiles, "wide")
    return AllocationProblem.from_reports(
        truthful_reports(neighborhood), neighborhood.households, pricing
    )


class TestGreedy:
    def test_example3_reproduces_paper(self, pricing):
        problem = _example3_problem(pricing)
        result = GreedyFlexibilityAllocator(seed=0).solve(problem)
        allocation = result.allocation
        # A always gets its only placement; B and C split (18,20)/(19,21).
        assert allocation["A"] == Interval(16, 18)
        assert {allocation["B"], allocation["C"]} == {
            Interval(18, 20),
            Interval(19, 21),
        }

    def test_processes_least_flexible_first(self, pricing):
        problem = _example3_problem(pricing)
        flexibility = predicted_flexibility_for_problem(problem)
        assert flexibility["A"] > flexibility["B"] == pytest.approx(flexibility["C"])

    def test_feasible_on_random_instances(self, pricing):
        problem = _random_problem(pricing)
        result = GreedyFlexibilityAllocator(seed=1).solve(problem)
        assert problem.is_feasible(result.allocation)
        assert result.cost == pytest.approx(problem.cost(result.allocation))

    def test_nonquadratic_pricing_fallback(self):
        pricing = TwoStepPricing(threshold_kw=4.0, low_rate=1.0, high_rate=10.0)
        problem = _random_problem(pricing, n=5)
        result = GreedyFlexibilityAllocator(seed=1).solve(problem)
        assert problem.is_feasible(result.allocation)

    def test_descending_order_usually_worse_or_equal(self, pricing):
        problem = _random_problem(pricing, n=10, seed=3)
        asc = GreedyFlexibilityAllocator(ascending=True, seed=0).solve(problem)
        desc = GreedyFlexibilityAllocator(ascending=False, seed=0).solve(problem)
        # Not a theorem, but holds on this fixed instance and guards the
        # ordering ablation's expected direction.
        assert asc.cost <= desc.cost + 1e-9


class TestExhaustive:
    def test_matches_manual_small_case(self, pricing):
        problem = _example3_problem(pricing)
        result = ExhaustiveAllocator().solve(problem)
        assert result.proven_optimal
        # Optimal: A(16,18); B and C need 4 block-hours within the 3 slots
        # (18,21), so exactly one hour stacks to 4 kW:
        # 0.3 * (4 + 4 + 4 + 16 + 4) = 9.6.
        assert result.cost == pytest.approx(9.6)

    def test_space_limit_enforced(self, pricing):
        problem = _random_problem(pricing, n=8)
        tiny = ExhaustiveAllocator(space_limit=2)
        with pytest.raises(ValueError):
            tiny.solve(problem)

    def test_empty_problem(self, pricing):
        problem = AllocationProblem(items=(), pricing=pricing)
        result = ExhaustiveAllocator().solve(problem)
        assert result.allocation == {}
        assert result.proven_optimal


class TestBranchAndBound:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_exhaustive(self, pricing, seed):
        problem = _random_problem(pricing, n=6, seed=seed)
        if problem.search_space_size() > 200_000:
            pytest.skip("instance too large for exhaustive reference")
        exact = BranchAndBoundAllocator(seed=0).solve(problem)
        reference = ExhaustiveAllocator().solve(problem)
        assert exact.proven_optimal
        assert exact.cost == pytest.approx(reference.cost)

    def test_never_worse_than_greedy(self, pricing):
        problem = _random_problem(pricing, n=12, seed=9)
        exact = BranchAndBoundAllocator(time_limit_s=20.0, seed=0).solve(problem)
        greedy = GreedyFlexibilityAllocator(seed=0).solve(problem)
        assert exact.cost <= greedy.cost + 1e-9

    def test_node_limit_returns_incumbent(self, pricing):
        problem = _random_problem(pricing, n=12, seed=10)
        limited = BranchAndBoundAllocator(node_limit=1, warm_start=True, seed=0)
        result = limited.solve(problem)
        assert problem.is_feasible(result.allocation)

    def test_gap_mode_completes(self, pricing):
        problem = _random_problem(pricing, n=10, seed=12)
        result = BranchAndBoundAllocator(gap=0.05, time_limit_s=20.0, seed=0).solve(
            problem
        )
        assert problem.is_feasible(result.allocation)

    def test_rejects_nonquadratic_pricing(self):
        pricing = TwoStepPricing(threshold_kw=4.0, low_rate=1.0, high_rate=10.0)
        problem = _random_problem(pricing, n=4)
        with pytest.raises(TypeError):
            BranchAndBoundAllocator().solve(problem)

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            BranchAndBoundAllocator(time_limit_s=0.0)
        with pytest.raises(ValueError):
            BranchAndBoundAllocator(node_limit=0)
        with pytest.raises(ValueError):
            BranchAndBoundAllocator(gap=1.0)

    def test_heterogeneous_ratings_supported(self, pricing):
        neighborhood = Neighborhood.of(
            HouseholdType("A", Preference.of(16, 20, 2), 5.0, rating_kw=1.0),
            HouseholdType("B", Preference.of(17, 21, 2), 5.0, rating_kw=3.0),
            HouseholdType("C", Preference.of(18, 22, 2), 5.0, rating_kw=2.0),
        )
        problem = AllocationProblem.from_reports(
            truthful_reports(neighborhood), neighborhood.households, pricing
        )
        exact = BranchAndBoundAllocator(seed=0).solve(problem)
        reference = ExhaustiveAllocator().solve(problem)
        assert exact.proven_optimal
        assert exact.cost == pytest.approx(reference.cost)


class TestLocalSearch:
    def test_improves_random_start(self, pricing, rng):
        problem = _random_problem(pricing, n=10, seed=2)
        start = RandomAllocator(seed=5).solve(problem)
        improved = improve_allocation(problem, start.allocation, rng)
        assert problem.cost(improved) <= start.cost + 1e-9
        assert problem.is_feasible(improved)

    def test_allocator_not_worse_than_greedy(self, pricing):
        problem = _random_problem(pricing, n=10, seed=4)
        local = LocalSearchAllocator(restarts=2, seed=0).solve(problem)
        greedy = GreedyFlexibilityAllocator(seed=0).solve(problem)
        assert local.cost <= greedy.cost + 1e-9

    def test_restart_validation(self):
        with pytest.raises(ValueError):
            LocalSearchAllocator(restarts=0)


class TestBaselines:
    def test_random_feasible(self, pricing):
        problem = _random_problem(pricing)
        result = RandomAllocator(seed=3).solve(problem)
        assert problem.is_feasible(result.allocation)

    def test_earliest_puts_everyone_at_window_start(self, pricing):
        problem = _random_problem(pricing, n=5)
        result = EarliestAllocator().solve(problem)
        for item in problem.items:
            assert result.allocation[item.household_id].start == item.window.start
