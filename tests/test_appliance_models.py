"""Tests for the appliance archetype library."""

import numpy as np
import pytest

from repro.core.mechanism import EnkiMechanism
from repro.extensions.appliances import MultiApplianceEnki
from repro.sim.appliance_models import (
    DISHWASHER,
    EV_CHARGER,
    STANDARD_ARCHETYPES,
    ApplianceArchetype,
    build_multi_appliance_population,
    population_statistics,
)


class TestArchetypes:
    def test_standard_archetypes_valid(self):
        assert len(STANDARD_ARCHETYPES) == 6
        names = [a.name for a in STANDARD_ARCHETYPES]
        assert len(set(names)) == len(names)

    def test_sample_request_respects_band(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            request = EV_CHARGER.sample_request(rng)
            pref = request.preference
            assert pref.window.start >= EV_CHARGER.earliest_start
            assert pref.window.end <= EV_CHARGER.latest_end
            assert EV_CHARGER.min_duration <= pref.duration <= EV_CHARGER.max_duration
            assert request.rating_kw == EV_CHARGER.rating_kw

    def test_validation(self):
        with pytest.raises(ValueError):
            ApplianceArchetype("x", 0.0, 1, 2, 0, 10, 5)
        with pytest.raises(ValueError):
            ApplianceArchetype("x", 1.0, 3, 2, 0, 10, 5)
        with pytest.raises(ValueError):
            ApplianceArchetype("x", 1.0, 1, 2, 10, 5, 5)
        with pytest.raises(ValueError):
            ApplianceArchetype("x", 1.0, 1, 8, 0, 4, 8)
        with pytest.raises(ValueError):
            ApplianceArchetype("x", 1.0, 1, 2, 0, 10, 1)
        with pytest.raises(ValueError):
            ApplianceArchetype("x", 1.0, 1, 2, 0, 10, 5, adoption_rate=0.0)


class TestPopulationBuilder:
    def test_builds_requested_size(self):
        rng = np.random.default_rng(1)
        homes = build_multi_appliance_population(rng, 25)
        assert len(homes) == 25
        ids = [home.household_id for home in homes]
        assert len(set(ids)) == 25

    def test_every_home_has_an_appliance(self):
        rng = np.random.default_rng(2)
        homes = build_multi_appliance_population(
            rng, 40, archetypes=(EV_CHARGER,)  # 50% adoption
        )
        assert all(len(home.appliances) >= 1 for home in homes)

    def test_adoption_rates_roughly_respected(self):
        rng = np.random.default_rng(3)
        homes = build_multi_appliance_population(rng, 300)
        stats = population_statistics(homes)
        # Washer adoption 0.9 vs pool pump 0.2.
        assert stats["count_washer"] > stats["count_pool_pump"]

    def test_population_statistics_shape(self):
        rng = np.random.default_rng(4)
        homes = build_multi_appliance_population(rng, 10)
        stats = population_statistics(homes)
        assert stats["households"] == 10.0
        assert stats["appliances_per_household"] >= 1.0

    def test_size_validated(self):
        with pytest.raises(ValueError):
            build_multi_appliance_population(np.random.default_rng(0), 0)

    def test_end_to_end_day_with_enki(self):
        rng = np.random.default_rng(5)
        homes = build_multi_appliance_population(rng, 12, base_charge=0.5)
        outcome = MultiApplianceEnki(EnkiMechanism(seed=0)).run_day(homes)
        assert len(outcome.bills) == 12
        # Budget balance on the appliance level plus base charges on top.
        appliance_revenue = sum(
            sum(bill.per_appliance_payment.values())
            for bill in outcome.bills.values()
        )
        assert appliance_revenue == pytest.approx(1.2 * outcome.total_cost)
