"""Tests for the audit trail and the simulate CLI command."""

import json

import pytest

from repro.cli import main
from repro.core.mechanism import EnkiMechanism
from repro.io.audit import AuditEvent, AuditLog, summarize_audit


class TestAuditLog:
    def test_append_and_replay(self, tmp_path):
        log = AuditLog(str(tmp_path / "audit.jsonl"))
        log.append(AuditEvent(kind="note", day=0, payload={"x": 1}))
        log.append(AuditEvent(kind="note", day=1, payload={"x": 2}))
        events = list(log.events())
        assert [e.day for e in events] == [0, 1]
        assert events[1].payload == {"x": 2}

    def test_kind_filter(self, tmp_path):
        log = AuditLog(str(tmp_path / "audit.jsonl"))
        log.append(AuditEvent(kind="a", day=0, payload={}))
        log.append(AuditEvent(kind="b", day=0, payload={}))
        assert len(list(log.events(kind="a"))) == 1

    def test_missing_file_is_empty(self, tmp_path):
        log = AuditLog(str(tmp_path / "missing.jsonl"))
        assert list(log.events()) == []

    def test_log_day_and_summary(self, tmp_path, small_random_neighborhood):
        log = AuditLog(str(tmp_path / "days.jsonl"))
        mechanism = EnkiMechanism(seed=0)
        for day in range(3):
            outcome = mechanism.run_day(small_random_neighborhood)
            log.log_day(day, outcome)
        summary = summarize_audit(log)
        assert summary.days == 3
        assert summary.budget_balanced_every_day
        assert summary.total_revenue == pytest.approx(1.2 * summary.total_cost)
        assert summary.total_defections == 0

    def test_lines_are_valid_json(self, tmp_path, small_random_neighborhood):
        path = tmp_path / "days.jsonl"
        log = AuditLog(str(path))
        outcome = EnkiMechanism(seed=0).run_day(small_random_neighborhood)
        log.log_day(0, outcome)
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert record["kind"] == "day_settled"


class TestSimulateCommand:
    def test_simulate_prints_ledger(self, capsys):
        assert main(["simulate", "--n", "6", "--days", "2", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "surplus ($)" in out
        assert out.count("\n") >= 4

    def test_simulate_writes_audit(self, capsys, tmp_path):
        path = tmp_path / "log.jsonl"
        code = main(
            [
                "simulate", "--n", "5", "--days", "2", "--seed", "4",
                "--audit", str(path),
            ]
        )
        assert code == 0
        summary = summarize_audit(AuditLog(str(path)))
        assert summary.days == 2
        assert summary.budget_balanced_every_day
