"""Tests for the Section II baselines: DLC, RTP and the landscape table."""

import random

import pytest

from repro.core.types import HouseholdType, Neighborhood, Preference
from repro.experiments import baseline_landscape
from repro.mechanisms.dlc import DirectLoadControl
from repro.mechanisms.rtp import RealTimePricingControl


def _peaky_neighborhood(n=8):
    return Neighborhood.of(
        *(
            HouseholdType(f"hh{i}", Preference.of(18, 22, 2), 5.0)
            for i in range(n)
        )
    )


class TestDirectLoadControl:
    def test_cap_enforced_on_served_profile(self):
        dlc = DirectLoadControl(cap_kw=6.0)
        dlc.run_day(_peaky_neighborhood(), rng=random.Random(0))
        served = dlc.last_details.served_profile
        assert served.peak_kw <= 6.0 + 1e-9

    def test_shedding_creates_unserved_demand(self):
        dlc = DirectLoadControl(cap_kw=6.0)
        dlc.run_day(_peaky_neighborhood(), rng=random.Random(0))
        details = dlc.last_details
        assert details.unserved_fraction > 0.0
        assert details.shed_events > 0

    def test_generous_cap_sheds_nothing(self):
        dlc = DirectLoadControl(cap_kw=1000.0)
        result = dlc.run_day(_peaky_neighborhood(), rng=random.Random(0))
        assert dlc.last_details.unserved_fraction == 0.0
        assert all(p > 0 for p in result.payments.values())

    def test_shed_households_lose_valuation(self):
        dlc = DirectLoadControl(cap_kw=4.0)  # only 2 of 8 homes per hour
        result = dlc.run_day(_peaky_neighborhood(), rng=random.Random(1))
        # Someone was shed, so some valuation is below the maximum 5.0.
        assert min(result.valuations.values()) < 5.0

    def test_payments_cover_cost(self):
        dlc = DirectLoadControl(cap_kw=6.0, xi=1.2)
        result = dlc.run_day(_peaky_neighborhood(), rng=random.Random(2))
        assert sum(result.payments.values()) == pytest.approx(
            1.2 * result.total_cost
        )

    def test_bad_cap_rejected(self):
        with pytest.raises(ValueError):
            DirectLoadControl(cap_kw=0.0)


class TestRealTimePricing:
    def test_day0_everyone_at_preferred_slot(self):
        rtp = RealTimePricingControl()
        rtp.reset()
        # Flat signal: each household's cheapest block ties everywhere, so
        # placements are random but valid.
        result = rtp.run_day(_peaky_neighborhood(), rng=random.Random(0))
        for hid, interval in result.consumption.items():
            assert 18 <= interval.start and interval.end <= 22

    def test_price_signal_updates_from_load(self):
        rtp = RealTimePricingControl()
        rtp.reset()
        rtp.run_day(_peaky_neighborhood(), rng=random.Random(0))
        signal = rtp.last_details.price_signal
        assert max(signal) > 0.0
        assert signal[3] == 0.0  # nobody consumes at 3am

    def test_herding_moves_the_peak(self):
        # Windows wide enough to flee: the crowd chases the cheapest hours
        # and the peak hour should move at least once over the episode.
        households = [
            HouseholdType(f"hh{i}", Preference.of(14, 24, 2), 5.0)
            for i in range(12)
        ]
        neighborhood = Neighborhood.of(*households)
        rtp = RealTimePricingControl()
        peaks = []
        rtp.reset()
        for day in range(6):
            rtp.run_day(neighborhood, rng=random.Random(day))
            peaks.append(rtp.last_details.peak_hour)
        assert len(set(peaks)) >= 2

    def test_run_days_resets_state(self):
        rtp = RealTimePricingControl()
        results = rtp.run_days(_peaky_neighborhood(), days=3, seed=0)
        assert len(results) == 3

    def test_invalid_days_rejected(self):
        with pytest.raises(ValueError):
            RealTimePricingControl().run_days(_peaky_neighborhood(), days=0)


class TestLandscapeExperiment:
    @pytest.fixture(scope="class")
    def landscape(self):
        return baseline_landscape.run(n_households=15, days=4, seed=5)

    def test_all_four_mechanisms_present(self, landscape):
        names = {row.mechanism for row in landscape.rows}
        assert names == {"no-control", "dlc", "rtp", "enki"}

    def test_dlc_flattens_but_sheds(self, landscape):
        dlc = landscape.row("dlc")
        base = landscape.row("no-control")
        assert dlc.mean_peak_kw <= base.mean_peak_kw + 1e-9
        assert dlc.unserved_fraction > 0.0

    def test_enki_serves_everyone_with_low_peak(self, landscape):
        enki = landscape.row("enki")
        base = landscape.row("no-control")
        assert enki.unserved_fraction == 0.0
        assert enki.mean_peak_kw <= base.mean_peak_kw + 1e-9
        assert enki.mean_cost <= base.mean_cost + 1e-9

    def test_render(self, landscape):
        rendered = landscape.render()
        assert "unserved" in rendered
        assert "enki" in rendered

    def test_unknown_row_rejected(self, landscape):
        with pytest.raises(KeyError):
            landscape.row("telepathy")

    def test_too_few_days_rejected(self):
        with pytest.raises(ValueError):
            baseline_landscape.run(days=1)
