"""Equivalence suite: the batched multi-day engine and the allocation cache.

The batched engine (``batch_days > 1``) and the digest-keyed
:class:`~repro.allocation.cache.AllocationCache` are pure replumbings of
the per-day columnar path: this module pins that a study or simulation
run batched, warm-cached, or both is **bit-identical** to the per-day
loop — records, settlements, quarantine decisions, checkpoint stores —
with only ``wall_time_s`` and the ``cache_hit`` provenance bit allowed
to differ.  Also pinned here: the digest layer's stability contract
(same problem content → same digest in the parent, in a spawned
interpreter, and under either kernel backend; one flipped rating bit →
a different digest) and the compile cache's hit-rate counters.
"""

import random
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation.arrays import (
    compile_cache_stats,
    compile_problem,
    reset_compile_cache,
)
from repro.allocation.base import AllocationProblem
from repro.allocation.cache import AllocationCache, problem_digest
from repro.allocation.greedy import GreedyFlexibilityAllocator
from repro.allocation.optimal import BranchAndBoundAllocator
from repro.core.columnar import ColumnarDayBatch, ColumnarReports
from repro.core.mechanism import EnkiMechanism
from repro.kernels import forced_backend, numba_available
from repro.pricing.quadratic import QuadraticPricing
from repro.robustness import ChaosInjector, ChaosPlan
from repro.robustness.quarantine import Quarantine
from repro.sim.engine import NeighborhoodSimulation, SocialWelfareStudy
from repro.sim.profiles import ProfileGenerator


def _record_key(records):
    """Everything in a study record except wall time and cache provenance."""
    return [
        (r.day, r.n_households, r.allocator, r.par, r.cost,
         r.proven_optimal, r.nodes_explored, r.served_tier)
        for r in records
    ]


def _outcome_key(outcomes):
    """Everything a simulation day decides, minus wall-clock time."""
    return [
        (
            o.allocation_starts.tolist(),
            o.consumption_starts.tolist(),
            o.settlement.ids,
            o.settlement.total_cost,
            o.settlement.payments.tolist(),
        )
        for o in outcomes
    ]


def _wide_neighborhood(n, seed):
    cols = ProfileGenerator().sample_population_columnar(
        np.random.default_rng(seed), n
    )
    return cols.to_neighborhood("wide")


# ------------------------------------------------------- batched study runs

class TestBatchedStudyEquivalence:
    @given(
        n=st.integers(min_value=1, max_value=200),
        days=st.integers(min_value=1, max_value=16),
        batch_days=st.integers(min_value=2, max_value=16),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=10, deadline=None)
    def test_batched_matches_per_day(self, n, days, batch_days, seed):
        study = SocialWelfareStudy(
            [GreedyFlexibilityAllocator()], columnar=True
        )
        per_day = study.run(n, days, seed=seed, workers=1)
        batched = study.run(
            n, days, seed=seed, workers=1, batch_days=batch_days
        )
        assert _record_key(per_day) == _record_key(batched)

    def test_batched_with_quarantine_matches_per_day(self):
        study = SocialWelfareStudy(
            [GreedyFlexibilityAllocator()],
            quarantine=Quarantine("clamp"),
            columnar=True,
        )
        per_day = study.run(40, 6, seed=11, workers=1)
        batched = study.run(40, 6, seed=11, workers=1, batch_days=3)
        assert _record_key(per_day) == _record_key(batched)

    def test_batched_with_exact_solver_matches_per_day(self):
        study = SocialWelfareStudy(
            [GreedyFlexibilityAllocator(),
             BranchAndBoundAllocator(time_limit_s=None, seed=1)],
            columnar=True,
        )
        per_day = study.run(10, 4, seed=3, workers=1)
        batched = study.run(10, 4, seed=3, workers=1, batch_days=4)
        assert _record_key(per_day) == _record_key(batched)

    def test_batched_workers_match_serial(self):
        study = SocialWelfareStudy(
            [GreedyFlexibilityAllocator()], columnar=True
        )
        serial = study.run(30, 8, seed=17, workers=1, batch_days=3)
        fanned = study.run(30, 8, seed=17, workers=4, batch_days=3)
        assert _record_key(serial) == _record_key(fanned)

    def test_batched_checkpoint_matches_per_day(self, tmp_path):
        from repro.robustness.checkpoint import CheckpointStore

        study = SocialWelfareStudy(
            [GreedyFlexibilityAllocator()], columnar=True
        )
        per_day = study.run(
            25, 5, seed=7,
            checkpoint=CheckpointStore(str(tmp_path / "per_day.jsonl")),
        )
        store = str(tmp_path / "batched.jsonl")
        batched = study.run(
            25, 5, seed=7, checkpoint=CheckpointStore(store), batch_days=5
        )
        assert _record_key(per_day) == _record_key(batched)
        # A rerun over the same store replays every checkpointed day.
        resumed = study.run(
            25, 5, seed=7, checkpoint=CheckpointStore(store), batch_days=5
        )
        assert _record_key(resumed) == _record_key(per_day)

    def test_batch_days_validation(self):
        columnar = SocialWelfareStudy(
            [GreedyFlexibilityAllocator()], columnar=True
        )
        with pytest.raises(ValueError, match=">= 1"):
            columnar.run(10, 2, seed=1, batch_days=0)
        object_path = SocialWelfareStudy([GreedyFlexibilityAllocator()])
        with pytest.raises(ValueError, match="columnar"):
            object_path.run(10, 2, seed=1, batch_days=4)


@pytest.mark.chaos
class TestBatchedChaos:
    """Crash days become singleton chunks and recover bit-identically."""

    def test_crash_days_recover_bit_identically(self, tmp_path):
        plan = ChaosPlan(root=55, crash_days=frozenset({2, 5}))
        injector = ChaosInjector(plan, fault_dir=str(tmp_path / "faults"))
        chaotic = SocialWelfareStudy(
            [GreedyFlexibilityAllocator()], columnar=True, chaos=injector
        ).run(15, 8, seed=41, workers=4, batch_days=4)
        clean = SocialWelfareStudy(
            [GreedyFlexibilityAllocator()], columnar=True
        ).run(15, 8, seed=41, workers=1)
        assert _record_key(chaotic) == _record_key(clean)


# -------------------------------------------------- batched simulation runs

class TestBatchedSimulationEquivalence:
    def test_batched_matches_per_day(self):
        neighborhood = _wide_neighborhood(30, seed=5)
        simulation = NeighborhoodSimulation(EnkiMechanism(seed=2), columnar=True)
        per_day = simulation.run(neighborhood, days=7, seed=13, workers=1)
        batched = simulation.run(
            neighborhood, days=7, seed=13, workers=1, batch_days=3
        )
        assert _outcome_key(per_day) == _outcome_key(batched)

    def test_run_days_columnar_matches_loop(self):
        neighborhood = _wide_neighborhood(25, seed=8)
        mechanism = EnkiMechanism(seed=4)
        rngs = [random.Random(1000 + day) for day in range(5)]
        batched = mechanism.run_days_columnar(neighborhood, rngs)
        per_day = [
            mechanism.run_day_columnar(neighborhood, rng=random.Random(1000 + day))
            for day in range(5)
        ]
        assert _outcome_key(per_day) == _outcome_key(batched)


# ------------------------------------------------------ batched quarantine

class TestBatchedScreen:
    def test_screen_batch_matches_per_day_with_malformed_rows(self):
        neighborhoods = [_wide_neighborhood(12, seed=s) for s in (1, 2, 3)]
        batch = ColumnarDayBatch.from_neighborhoods(neighborhoods)
        begin = batch.true_start.astype(float)
        end = batch.true_end.astype(float)
        duration = batch.duration.astype(float)
        # Corrupt one row in each day, three distinct ways.
        begin[2] = -4.0
        end[batch.day_slice(1)][3] = float("nan")
        duration[batch.day_slice(2).start + 5] += 1.0
        quarantine = Quarantine("clamp")
        batched = quarantine.screen_columnar_batch(batch, begin, end, duration)
        assert len(batched) == 3
        for k, neighborhood in enumerate(neighborhoods):
            sl = batch.day_slice(k)
            single = quarantine.screen_columnar(
                neighborhood, begin[sl], end[sl], duration[sl]
            )
            one = batched[k]
            assert np.array_equal(one.kept, single.kept)
            assert one.excluded == single.excluded
            assert [
                (d.household_id, d.action, d.reason) for d in one.decisions
            ] == [
                (d.household_id, d.action, d.reason) for d in single.decisions
            ]
            assert one.accepted.ids == single.accepted.ids
            assert np.array_equal(one.accepted.start, single.accepted.start)
            assert np.array_equal(one.accepted.end, single.accepted.end)


# ------------------------------------------------------- allocation cache

class TestAllocationCache:
    def test_warm_study_replay_is_bit_identical(self):
        cache = AllocationCache()
        study = SocialWelfareStudy(
            [GreedyFlexibilityAllocator(),
             BranchAndBoundAllocator(time_limit_s=None, seed=1)],
            columnar=True,
        )
        cold = study.run(12, 4, seed=9, alloc_cache=cache, batch_days=4)
        warm = study.run(12, 4, seed=9, alloc_cache=cache, batch_days=4)
        assert _record_key(cold) == _record_key(warm)
        assert all(not r.cache_hit for r in cold)
        # With no time limit every B&B day proves, so every warm solve
        # (greedy and exact) replays from the cache.
        assert all(r.cache_hit for r in warm)
        assert cache.stats()["hits"] == len(warm)

    def test_warm_run_matches_uncached_run(self):
        cache = AllocationCache()
        study = SocialWelfareStudy(
            [GreedyFlexibilityAllocator()], columnar=True
        )
        plain = study.run(20, 3, seed=21)
        study.run(20, 3, seed=21, alloc_cache=cache)
        warm = study.run(20, 3, seed=21, alloc_cache=cache)
        assert _record_key(plain) == _record_key(warm)

    def test_different_seed_never_false_hits(self):
        cache = AllocationCache()
        study = SocialWelfareStudy(
            [GreedyFlexibilityAllocator()], columnar=True
        )
        study.run(20, 3, seed=21, alloc_cache=cache)
        study.run(20, 3, seed=22, alloc_cache=cache)
        assert cache.stats()["hits"] == 0

    def test_disk_store_shares_across_instances(self, tmp_path):
        study = SocialWelfareStudy(
            [GreedyFlexibilityAllocator()], columnar=True
        )
        first = AllocationCache(directory=str(tmp_path / "store"))
        cold = study.run(15, 3, seed=33, alloc_cache=first)
        second = AllocationCache(directory=str(tmp_path / "store"))
        warm = study.run(15, 3, seed=33, alloc_cache=second)
        assert _record_key(cold) == _record_key(warm)
        assert second.stats()["hits"] > 0
        assert second.stats()["misses"] == 0

    def test_unproven_bnb_results_are_not_cached(self):
        cache = AllocationCache()
        allocator = BranchAndBoundAllocator(time_limit_s=1e-6, seed=1)
        neighborhood = _wide_neighborhood(40, seed=2)
        pricing = QuadraticPricing()
        compiled = ColumnarReports.truthful(neighborhood).compile(
            neighborhood, pricing
        )
        result = cache.solve_columnar(
            allocator, compiled, pricing, random.Random(0)
        )
        assert not result.proven_optimal
        assert cache.stats()["stored"] == 0
        again = cache.solve_columnar(
            allocator, compiled, pricing, random.Random(0)
        )
        assert not again.cache_hit


# --------------------------------------------------------- digest stability

def _digest_for(seed=123, n=40):
    neighborhood = _wide_neighborhood(n, seed=seed)
    pricing = QuadraticPricing()
    compiled = ColumnarReports.truthful(neighborhood).compile(
        neighborhood, pricing
    )
    return compiled, problem_digest(compiled)


_CHILD_DIGEST_SCRIPT = """
import numpy as np
from repro.allocation.cache import problem_digest
from repro.core.columnar import ColumnarReports
from repro.pricing.quadratic import QuadraticPricing
from repro.sim.profiles import ProfileGenerator

cols = ProfileGenerator().sample_population_columnar(
    np.random.default_rng(123), 40
)
neighborhood = cols.to_neighborhood("wide")
compiled = ColumnarReports.truthful(neighborhood).compile(
    neighborhood, QuadraticPricing()
)
print(problem_digest(compiled))
"""


class TestDigestStability:
    def test_same_content_same_digest(self):
        _, a = _digest_for()
        _, b = _digest_for()
        assert a == b

    def test_digest_survives_pickle_round_trip(self):
        import pickle

        compiled, digest = _digest_for()
        clone = pickle.loads(pickle.dumps(compiled))
        assert problem_digest(clone) == digest

    def test_fresh_interpreter_same_digest(self):
        """A spawned worker keys the same problem identically."""
        _, parent = _digest_for()
        child = subprocess.run(
            [sys.executable, "-c", _CHILD_DIGEST_SCRIPT],
            capture_output=True, text=True, check=True,
        )
        assert child.stdout.strip() == parent

    def test_digest_is_backend_independent(self):
        compiled, _ = _digest_for()
        with forced_backend("python"):
            python_digest = problem_digest(compiled)
        backends = ["python"] + (["numba"] if numba_available() else [])
        for backend in backends:
            with forced_backend(backend):
                assert problem_digest(compiled) == python_digest

    def test_one_rating_bit_flip_changes_digest(self):
        compiled, digest = _digest_for()
        rating = compiled.rating.copy()
        rating[0] = np.nextafter(rating[0], np.inf)
        from repro.allocation.arrays import CompiledProblem

        flipped = CompiledProblem.from_arrays(
            compiled.ids,
            compiled.win_start,
            compiled.win_end,
            compiled.duration,
            rating,
            QuadraticPricing(),
        )
        assert problem_digest(flipped) != digest

    def test_full_key_separates_backends_and_rngs(self):
        compiled, _ = _digest_for()
        cache = AllocationCache()
        allocator = GreedyFlexibilityAllocator()
        with forced_backend("python"):
            key_a = cache.key_for(allocator, compiled, random.Random(0))
            key_b = cache.key_for(allocator, compiled, random.Random(1))
        assert key_a != key_b
        if numba_available():
            with forced_backend("numba"):
                key_numba = cache.key_for(allocator, compiled, random.Random(0))
            assert key_numba != key_a


# ----------------------------------------------------- compile cache stats

class TestCompileCacheStats:
    def test_repeated_day_drivers_hit_the_content_cache(self):
        """The fig7-style rebuild-every-repeat shape compiles once."""
        reset_compile_cache()
        neighborhood = _wide_neighborhood(15, seed=6).to_objects()
        from repro.core.mechanism import truthful_reports

        pricing = QuadraticPricing()
        for _ in range(8):
            problem = AllocationProblem.from_reports(
                truthful_reports(neighborhood), neighborhood.households, pricing
            )
            compile_problem(problem)
        stats = compile_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 7
        reset_compile_cache()

    def test_reset_stats_only_keeps_entries(self):
        reset_compile_cache()
        neighborhood = _wide_neighborhood(10, seed=4).to_objects()
        from repro.core.mechanism import truthful_reports

        pricing = QuadraticPricing()
        problem = AllocationProblem.from_reports(
            truthful_reports(neighborhood), neighborhood.households, pricing
        )
        compile_problem(problem)
        reset_compile_cache(stats_only=True)
        rebuilt = AllocationProblem.from_reports(
            truthful_reports(neighborhood), neighborhood.households, pricing
        )
        compile_problem(rebuilt)
        stats = compile_cache_stats()
        assert stats == {"hits": 1, "misses": 0}
        reset_compile_cache()
