"""Tests for the distributional Bayes-Nash incentive probe."""

import pytest

from repro.core.intervals import Interval
from repro.core.types import HouseholdType, Preference
from repro.theory.bayes_nash import estimate_bayes_nash_regret


@pytest.fixture(scope="module")
def estimate():
    target = HouseholdType("T", Preference.of(18, 20, 2), 5.0)
    return estimate_bayes_nash_regret(
        target,
        n_opponents=10,
        worlds=4,
        repeats_per_world=2,
        exploration=Interval(16, 22),
        seed=11,
    )


class TestBayesNashEstimate:
    def test_shapes(self, estimate):
        assert estimate.worlds == 4
        assert estimate.target_window == (18, 20)
        assert (18, 20) in estimate.mean_utilities
        assert 0.0 <= estimate.truthful_best_fraction <= 1.0
        assert estimate.mean_regret <= estimate.max_regret + 1e-12

    def test_weak_ic_in_expectation(self, estimate):
        # The theorem's actual claim: truth maximizes *expected* utility
        # (pointwise per-world regret can be positive).
        best = estimate.mean_utilities[estimate.expected_best_window]
        truthful = estimate.mean_utilities[estimate.target_window]
        assert best - truthful <= 0.15 * abs(best) + 1e-9

    def test_regret_nonnegative(self, estimate):
        assert estimate.mean_regret >= 0.0

    def test_validation(self):
        target = HouseholdType("T", Preference.of(18, 20, 2), 5.0)
        with pytest.raises(ValueError):
            estimate_bayes_nash_regret(target, worlds=0)
