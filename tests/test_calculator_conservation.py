"""Tests for the payoff calculator and the conservation extension."""

import random

import pytest

from repro.core.mechanism import EnkiMechanism
from repro.core.types import HouseholdType, Neighborhood, Preference
from repro.extensions.conservation import (
    ConservationEnki,
    conservation_summary,
)
from repro.userstudy.calculator import (
    CalculatorGuidedSubject,
    PayoffCalculator,
)


def _assumed_crowd(n=5):
    return [
        (
            HouseholdType(f"a{i}", Preference.of(18, 22, 2), 5.0),
            Preference.of(18, 22, 2),
        )
        for i in range(n)
    ]


class TestPayoffCalculator:
    def test_estimates_are_sorted_best_first(self):
        calculator = PayoffCalculator(EnkiMechanism(), repeats=2)
        subject = HouseholdType("me", Preference.of(18, 21, 2), 5.0)
        estimates = calculator.estimate(
            subject, subject.true_preference, _assumed_crowd(), seed=0
        )
        utilities = [e.utility for e in estimates]
        assert utilities == sorted(utilities, reverse=True)

    def test_truthful_candidate_included_and_never_defects(self):
        calculator = PayoffCalculator(EnkiMechanism(), repeats=2)
        subject = HouseholdType("me", Preference.of(18, 21, 2), 5.0)
        estimates = calculator.estimate(
            subject, subject.true_preference, _assumed_crowd(), seed=1
        )
        truthful = next(e for e in estimates if e.window == (18, 21))
        assert not truthful.would_defect
        assert truthful.payment > 0.0

    def test_misreport_away_flags_defection(self):
        calculator = PayoffCalculator(EnkiMechanism(), repeats=1)
        subject = HouseholdType("me", Preference.of(18, 20, 2), 5.0)
        estimates = calculator.estimate(
            subject,
            subject.true_preference,
            _assumed_crowd(),
            candidates=[(15, 17)],
            seed=2,
        )
        assert estimates[0].would_defect

    def test_repeats_validated(self):
        with pytest.raises(ValueError):
            PayoffCalculator(repeats=0)

    def test_calculator_guided_subject_submits_valid_window(self, rng):
        subject_model = CalculatorGuidedSubject(
            PayoffCalculator(EnkiMechanism(), repeats=1), assumed_crowd=3
        )
        pref = Preference.of(18, 21, 2)
        submitted = subject_model.submit(0, pref, [], rng)
        assert submitted.duration == 2

    def test_guided_subject_validation(self):
        with pytest.raises(ValueError):
            CalculatorGuidedSubject(assumed_crowd=0)


class TestConservation:
    def _mixed_neighborhood(self):
        # Four high-value households and two whose rho is so low that the
        # peak payment is guaranteed to exceed their valuation.
        households = [
            HouseholdType(f"rich{i}", Preference.of(17, 23, 2), 9.0)
            for i in range(4)
        ] + [
            HouseholdType(f"poor{i}", Preference.of(18, 21, 2), 0.2)
            for i in range(2)
        ]
        return Neighborhood.of(*households)

    def test_rational_participation_drops_low_value_loads(self):
        day = ConservationEnki(EnkiMechanism()).run_day(
            self._mixed_neighborhood(), rng=random.Random(0)
        )
        assert day.abstention_rate > 0.0
        assert all(hid.startswith("poor") for hid in day.abstainers)
        # Survivors end the day at their fixed point: nobody underwater.
        assert day.outcome is not None
        for hid in day.participants:
            assert day.outcome.settlement.utilities[hid] >= -1e-9

    def test_generous_tolerance_keeps_everyone(self):
        day = ConservationEnki(EnkiMechanism(), tolerance=1e9).run_day(
            self._mixed_neighborhood(), rng=random.Random(0)
        )
        assert day.abstention_rate == 0.0

    def test_served_energy_shrinks_with_xi(self):
        summary = conservation_summary(
            self._mixed_neighborhood(), xis=(1.0, 2.0), seed=1
        )
        assert summary[2.0].served_energy_kwh <= summary[1.0].served_energy_kwh + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            ConservationEnki(tolerance=-1.0)
        with pytest.raises(ValueError):
            ConservationEnki(max_passes=0)
