"""Tests for the command-line interface."""

from repro.cli import main


class TestCli:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "tab2" in out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_examples_runs(self, capsys):
        assert main(["examples"]) == 0
        assert "Example 1" in capsys.readouterr().out

    def test_fig4_with_overrides(self, capsys):
        code = main(
            [
                "fig4",
                "--populations", "5",
                "--days", "1",
                "--time-limit", "2.0",
                "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Enki PAR" in out

    def test_tab2_with_seed(self, capsys):
        assert main(["tab2", "--seed", "5"]) == 0
        assert "Overall" in capsys.readouterr().out


class TestColumnarFlag:
    def test_fig6_columnar(self, capsys):
        code = main(
            [
                "fig6",
                "--populations", "8",
                "--days", "1",
                "--time-limit", "2.0",
                "--columnar",
            ]
        )
        assert code == 0
        assert "Enki (ms)" in capsys.readouterr().out

    def test_simulate_columnar(self, capsys):
        assert main(["simulate", "--n", "12", "--days", "2", "--columnar"]) == 0
        out = capsys.readouterr().out
        assert "defectors" in out

    def test_simulate_columnar_rejects_checkpoint(self, capsys, tmp_path):
        code = main(
            [
                "simulate", "--n", "5", "--days", "1", "--columnar",
                "--checkpoint", str(tmp_path / "ck.jsonl"),
            ]
        )
        assert code == 2
        assert "--columnar" in capsys.readouterr().err

    def test_simulate_columnar_rejects_audit(self, capsys, tmp_path):
        code = main(
            [
                "simulate", "--n", "5", "--days", "1", "--columnar",
                "--audit", str(tmp_path / "audit.jsonl"),
            ]
        )
        assert code == 2
        assert "--columnar" in capsys.readouterr().err


class TestProfileFlag:
    def test_profile_prints_stats_and_writes_pstats(self, capsys, tmp_path):
        save = tmp_path / "fig4.txt"
        code = main(
            [
                "fig4",
                "--profile",
                "--populations", "5",
                "--days", "1",
                "--time-limit", "2.0",
                "--save", str(save),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cumulative" in out  # the pstats header of the top-25 table
        dump = tmp_path / "fig4.pstats"
        assert dump.exists()
        # The dump must be loadable for later digging.
        import pstats

        stats = pstats.Stats(str(dump))
        assert stats.total_calls > 0

    def test_profile_dump_lands_in_cwd_without_save(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert main(["list", "--profile"]) == 0
        assert (tmp_path / "list.pstats").exists()

    def test_profile_batched_run_captures_batch_kernels(
        self, capsys, tmp_path, monkeypatch
    ):
        """Batched mode merges the batch-engine frames into the dump."""
        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "fig4",
                "--profile",
                "--populations", "10",
                "--days", "2",
                "--time-limit", "2.0",
                "--columnar",
                "--batch-days", "2",
            ]
        )
        assert code == 0
        import pstats

        stats = pstats.Stats(str(tmp_path / "fig4.pstats"))
        frames = {func for (_, _, func) in stats.stats}
        assert "_run_study_batch" in frames
        assert "place_batch" in frames


class TestBatchedFlags:
    def test_batch_days_must_be_positive(self, capsys):
        code = main(
            ["simulate", "--n", "5", "--days", "1", "--columnar",
             "--batch-days", "0"]
        )
        assert code == 2
        assert ">= 1" in capsys.readouterr().err

    def test_batch_days_requires_columnar(self, capsys):
        code = main(
            ["simulate", "--n", "5", "--days", "2", "--batch-days", "2"]
        )
        assert code == 2
        assert "--columnar" in capsys.readouterr().err

    def test_alloc_cache_requires_columnar_for_sweeps(self, capsys):
        code = main(
            ["fig5", "--populations", "5", "--days", "1", "--alloc-cache"]
        )
        assert code == 2
        assert "--columnar" in capsys.readouterr().err

    def test_simulate_batched_runs(self, capsys):
        code = main(
            ["simulate", "--n", "12", "--days", "3", "--columnar",
             "--batch-days", "3"]
        )
        assert code == 0
        assert "defectors" in capsys.readouterr().out

    def test_fig4_batched_with_memory_cache(self, capsys):
        code = main(
            [
                "fig4",
                "--populations", "8",
                "--days", "2",
                "--time-limit", "2.0",
                "--columnar",
                "--batch-days", "2",
                "--alloc-cache",
            ]
        )
        assert code == 0
        assert "Enki PAR" in capsys.readouterr().out

    def test_fig7_with_disk_cache(self, capsys, tmp_path):
        store = tmp_path / "cache"
        code = main(
            ["fig7", "--repeats", "1", "--seed", "4",
             "--alloc-cache", str(store)]
        )
        assert code == 0
        assert store.exists()
