"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "tab2" in out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_examples_runs(self, capsys):
        assert main(["examples"]) == 0
        assert "Example 1" in capsys.readouterr().out

    def test_fig4_with_overrides(self, capsys):
        code = main(
            [
                "fig4",
                "--populations", "5",
                "--days", "1",
                "--time-limit", "2.0",
                "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Enki PAR" in out

    def test_tab2_with_seed(self, capsys):
        assert main(["tab2", "--seed", "5"]) == 0
        assert "Overall" in capsys.readouterr().out
