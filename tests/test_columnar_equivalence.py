"""Equivalence suite: the columnar fast path vs the object path.

The columnar day (``ColumnarNeighborhood`` → ``solve_columnar`` →
``settle_arrays``) must be a pure speedup of the per-household object
path: identical inputs produce bit-identical allocations, costs,
settlements, and quarantine decisions.  As in
``test_optimal_equivalence.py``, the randomized instances use power
ratings that are exact binary floats (the paper's 2 kW default among
them) so every load sum is exactly representable — the regime in which
the vectorized kernels are provably bit-identical to the scalar
arithmetic.
"""

import os
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation.arrays import CompiledProblem, compile_problem
from repro.allocation.base import AllocationItem, AllocationProblem
from repro.allocation.greedy import GreedyFlexibilityAllocator
from repro.allocation.optimal import BranchAndBoundAllocator
from repro.core.columnar import ColumnarNeighborhood, ColumnarReports
from repro.core.intervals import Interval
from repro.core.mechanism import EnkiMechanism
from repro.core.types import HouseholdType, Neighborhood, Preference
from repro.pricing.base import PricingModel
from repro.pricing.piecewise import TwoStepPricing
from repro.pricing.quadratic import QuadraticPricing
from repro.robustness import ChaosInjector, ChaosPlan
from repro.robustness.errors import InvalidReportError
from repro.robustness.quarantine import Quarantine, RawReport
from repro.sim import shm
from repro.sim.engine import NeighborhoodSimulation, SocialWelfareStudy
from repro.sim.profiles import ColumnarProfiles, ProfileGenerator

#: Exactly-representable ratings (binary fractions), the paper's 2.0 among
#: them; keeps all load arithmetic exact so bit-identity is well-defined.
_EXACT_RATINGS = (0.5, 1.0, 2.0, 4.0)

_PRICINGS = (
    QuadraticPricing(sigma=0.3),
    TwoStepPricing(threshold_kw=6.0, low_rate=1.0, high_rate=4.0),
)


# ---------------------------------------------------------------- strategies

@st.composite
def allocation_problems(draw, max_households=200, quadratic_only=False):
    """Random Eq. 2 instances up to the acceptance bound n = 200."""
    n = draw(st.integers(min_value=1, max_value=max_households))
    pricing = _PRICINGS[0] if quadratic_only else draw(st.sampled_from(_PRICINGS))
    rng = random.Random(draw(st.integers(min_value=0, max_value=2**16)))
    items = []
    for j in range(n):
        start = rng.randint(0, 20)
        length = rng.randint(1, min(8, 24 - start))
        items.append(
            AllocationItem(
                household_id=f"hh{j:04d}",
                window=Interval(start, start + length),
                duration=rng.randint(1, length),
                rating_kw=rng.choice(_EXACT_RATINGS),
            )
        )
    return AllocationProblem(tuple(items), pricing)


@st.composite
def neighborhoods(draw, max_households=60):
    """Random neighborhoods with exact-binary ratings for full-day runs."""
    n = draw(st.integers(min_value=1, max_value=max_households))
    rng = random.Random(draw(st.integers(min_value=0, max_value=2**16)))
    households = []
    for j in range(n):
        start = rng.randint(0, 18)
        length = rng.randint(2, min(10, 24 - start))
        households.append(
            HouseholdType(
                household_id=f"hh{j:03d}",
                true_preference=Preference(
                    Interval(start, start + length), rng.randint(1, length)
                ),
                valuation_factor=rng.choice((0.5, 1.0, 1.5, 2.0)),
                rating_kw=rng.choice(_EXACT_RATINGS),
            )
        )
    return Neighborhood.of(*households)


# ----------------------------------------------------- greedy kernel parity

class TestGreedyColumnarMatchesObject:
    @given(allocation_problems(), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_same_allocation_and_cost(self, problem, seed):
        allocator = GreedyFlexibilityAllocator()
        obj = allocator.solve(problem, random.Random(seed))
        compiled = compile_problem(problem)
        col = allocator.solve_columnar(
            compiled, problem.pricing, random.Random(seed)
        )
        for row, hid in enumerate(compiled.ids):
            assert int(col.starts[row]) == obj.allocation[hid].start
        assert col.cost == obj.cost

    @given(allocation_problems(max_households=12, quadratic_only=True),
           st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=15, deadline=None)
    def test_bridge_allocator_matches_object(self, problem, seed):
        """The default solve_columnar bridge (used by B&B) is faithful."""
        # No time limit: a budgeted solve's proven_optimal verdict is
        # wall-clock-dependent, which hypothesis rightly flags as flaky.
        allocator = BranchAndBoundAllocator(time_limit_s=None, seed=1)
        obj = allocator.solve(problem, random.Random(seed))
        compiled = compile_problem(problem)
        col = allocator.solve_columnar(
            compiled, problem.pricing, random.Random(seed)
        )
        for row, hid in enumerate(compiled.ids):
            assert int(col.starts[row]) == obj.allocation[hid].start
        assert col.cost == obj.cost
        assert col.proven_optimal == obj.proven_optimal

    def test_empty_problem(self):
        compiled = CompiledProblem.from_arrays((), [], [], [], [])
        result = GreedyFlexibilityAllocator().solve_columnar(
            compiled, QuadraticPricing(sigma=0.3), random.Random(0)
        )
        assert result.starts.size == 0
        assert result.cost == 0.0


# ------------------------------------------------------- full-day settlement

class TestDayColumnarMatchesObject:
    @given(neighborhoods(), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_full_day_bit_identical(self, neighborhood, seed):
        mechanism = EnkiMechanism(seed=7)
        obj = mechanism.run_day(neighborhood, rng=random.Random(seed))
        cols = ColumnarNeighborhood.from_objects(neighborhood)
        col = mechanism.run_day_columnar(cols, rng=random.Random(seed))

        settlement = col.settlement.to_settlement()
        assert settlement.total_cost == obj.settlement.total_cost
        assert settlement.payments == obj.settlement.payments
        assert settlement.utilities == obj.settlement.utilities
        assert settlement.flexibility == obj.settlement.flexibility
        assert settlement.neighborhood_utility == (
            obj.settlement.neighborhood_utility
        )
        assert settlement.load_profile == obj.settlement.load_profile
        for row, hid in enumerate(col.neighborhood.ids):
            assert int(col.allocation_starts[row]) == (
                obj.allocation_result.allocation[hid].start
            )
            assert int(col.consumption_starts[row]) == obj.consumption[hid].start

    @given(neighborhoods(), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_theorem1_budget_balance(self, neighborhood, seed):
        """Thm 1 (weak budget balance) holds on the columnar path."""
        mechanism = EnkiMechanism(seed=7)
        cols = ColumnarNeighborhood.from_objects(neighborhood)
        outcome = mechanism.run_day_columnar(cols, rng=random.Random(seed))
        settlement = outcome.settlement
        assert float(settlement.payments.sum()) >= settlement.total_cost - 1e-9
        assert settlement.neighborhood_utility >= -1e-9


# --------------------------------------------------------- quarantine parity

def _raw_reports(neighborhood, begin, end, duration):
    return {
        hid: RawReport(hid, float(b), float(e), float(v))
        for hid, b, e, v in zip(neighborhood.ids, begin, end, duration)
    }


class TestQuarantineColumnarParity:
    def _fixture(self):
        rng = np.random.default_rng(3)
        cols = ProfileGenerator().sample_population_columnar(rng, 12)
        neighborhood = cols.to_neighborhood("wide")
        begin = neighborhood.true_start.astype(float)
        end = neighborhood.true_end.astype(float)
        duration = neighborhood.duration.astype(float)
        # Corrupt three rows in three distinct ways.
        begin[2] = -4.0                    # window escapes the day
        duration[5] = duration[5] + 1.0    # duration disputes the meter
        end[8] = begin[8]                  # empty window
        return neighborhood, begin, end, duration

    @pytest.mark.parametrize("policy", ["clamp", "exclude"])
    def test_decisions_match_object_screen(self, policy):
        neighborhood, begin, end, duration = self._fixture()
        col = Quarantine(policy).screen_columnar(
            neighborhood, begin, end, duration
        )
        obj = Quarantine(policy).screen(
            neighborhood.to_objects(),
            _raw_reports(neighborhood, begin, end, duration),
        )
        assert {d.household_id for d in col.decisions} == {
            d.household_id for d in obj.decisions
        }
        by_id = {d.household_id: d for d in obj.decisions}
        for decision in col.decisions:
            other = by_id[decision.household_id]
            assert decision.action == other.action
            assert decision.reason == other.reason
            assert decision.repaired == other.repaired
        assert col.excluded == obj.excluded
        accepted = col.accepted.to_objects()
        for hid, report in obj.accepted.items():
            assert accepted[hid].preference == report.preference

    def test_reject_raises_like_object_screen(self):
        neighborhood, begin, end, duration = self._fixture()
        with pytest.raises(InvalidReportError):
            Quarantine("reject").screen_columnar(
                neighborhood, begin, end, duration
            )

    def test_clean_reports_pass_through(self):
        neighborhood, *_ = self._fixture()
        reports = ColumnarReports.truthful(neighborhood)
        result = Quarantine("clamp").screen_columnar(
            neighborhood,
            reports.start.astype(float),
            reports.end.astype(float),
            reports.duration.astype(float),
        )
        assert result.n_quarantined == 0
        assert bool(result.kept.all())
        assert result.accepted.ids == neighborhood.ids

    def test_non_finite_rows_are_screened(self):
        neighborhood, begin, end, duration = self._fixture()
        begin[0] = float("nan")
        end[1] = float("inf")
        result = Quarantine("exclude").screen_columnar(
            neighborhood, begin, end, duration
        )
        flagged = {d.household_id for d in result.decisions}
        assert neighborhood.ids[0] in flagged
        assert neighborhood.ids[1] in flagged


# --------------------------------------------------------- sampler + bridges

class TestColumnarSampler:
    def test_invariants_and_determinism(self):
        generator = ProfileGenerator()
        a = generator.sample_population_columnar(np.random.default_rng(5), 500)
        b = generator.sample_population_columnar(np.random.default_rng(5), 500)
        assert a.ids == b.ids
        for name in ("narrow_start", "narrow_end", "wide_start", "wide_end",
                     "duration", "rating", "valuation"):
            assert np.array_equal(getattr(a, name), getattr(b, name))
        assert np.all(a.narrow_start >= 0)
        assert np.all(a.wide_end <= 24)
        assert np.all(a.wide_start <= a.narrow_start)
        assert np.all(a.narrow_end <= a.wide_end)
        assert np.all(a.narrow_end - a.narrow_start >= a.duration)
        assert np.all(a.duration >= 1)

    def test_round_trip_through_objects(self):
        generator = ProfileGenerator()
        cols = generator.sample_population_columnar(np.random.default_rng(9), 40)
        back = ColumnarProfiles.from_profiles(cols.to_profiles())
        assert back.ids == cols.ids
        assert np.array_equal(back.duration, cols.duration)
        assert np.array_equal(back.wide_start, cols.wide_start)
        assert np.array_equal(back.valuation, cols.valuation)

    def test_neighborhood_round_trip(self):
        cols = ProfileGenerator().sample_population_columnar(
            np.random.default_rng(2), 25
        )
        neighborhood = cols.to_neighborhood("wide")
        rebuilt = ColumnarNeighborhood.from_objects(neighborhood.to_objects())
        assert rebuilt.ids == neighborhood.ids
        assert np.array_equal(rebuilt.true_start, neighborhood.true_start)
        assert np.array_equal(rebuilt.rating, neighborhood.rating)
        assert np.array_equal(rebuilt.valuation, neighborhood.valuation)


# -------------------------------------------------- pricing batch marginals

class _ScalarOnlyPricing(PricingModel):
    """Exercises the default (fromiter) marginal_cost_batch fallback."""

    def hourly_cost(self, load_kw):
        return 2.0 * load_kw

    def cost(self, profile):
        return sum(self.hourly_cost(l) for l in profile.hourly_kw)

    def marginal_cost(self, load_kw, added_kw):
        return self.hourly_cost(load_kw + added_kw) - self.hourly_cost(load_kw)


class TestMarginalCostBatch:
    @pytest.mark.parametrize(
        "pricing", [*_PRICINGS, _ScalarOnlyPricing()],
        ids=["quadratic", "two-step", "scalar-fallback"],
    )
    def test_matches_scalar_elementwise(self, pricing):
        rng = np.random.default_rng(11)
        loads = rng.integers(0, 12, size=64).astype(float) * 0.5
        for added in (0.5, 1.0, 2.0, 4.0):
            batch = pricing.marginal_cost_batch(loads, added)
            for load, value in zip(loads.tolist(), batch.tolist()):
                assert value == pricing.marginal_cost(load, added)


# ----------------------------------------------------------- study-level runs

def _columnar_study_key(records):
    return [
        (r.day, r.n_households, r.allocator, r.par, r.cost, r.served_tier)
        for r in records
    ]


class TestColumnarStudy:
    def test_workers_do_not_change_results(self):
        study = SocialWelfareStudy(
            [GreedyFlexibilityAllocator()], columnar=True
        )
        serial = study.run(30, 4, seed=123, workers=1)
        fanned = study.run(30, 4, seed=123, workers=4)
        assert _columnar_study_key(serial) == _columnar_study_key(fanned)

    def test_quarantined_columnar_study_runs(self):
        study = SocialWelfareStudy(
            [GreedyFlexibilityAllocator()],
            quarantine=Quarantine("clamp"),
            columnar=True,
        )
        records = study.run(15, 2, seed=5)
        assert len(records) == 2
        assert all(r.n_households == 15 for r in records)

    def test_malformed_chaos_rejected_at_init(self, tmp_path):
        plan = ChaosPlan(root=1, malformed_days=frozenset({0}))
        injector = ChaosInjector(plan, fault_dir=str(tmp_path))
        with pytest.raises(ValueError, match="columnar"):
            SocialWelfareStudy(
                [GreedyFlexibilityAllocator()],
                quarantine=Quarantine("clamp"),
                columnar=True,
                chaos=injector,
            )


@pytest.mark.chaos
class TestColumnarChaos:
    """Injected worker crashes leave the columnar study bit-identical."""

    def test_crash_days_recover_bit_identically(self, tmp_path):
        plan = ChaosPlan(root=77, crash_days=frozenset({1, 4}))
        injector = ChaosInjector(plan, fault_dir=str(tmp_path / "faults"))
        chaotic = SocialWelfareStudy(
            [GreedyFlexibilityAllocator()], columnar=True, chaos=injector
        ).run(12, 6, seed=2024, workers=4)
        clean = SocialWelfareStudy(
            [GreedyFlexibilityAllocator()], columnar=True
        ).run(12, 6, seed=2024, workers=1)
        assert _columnar_study_key(chaotic) == _columnar_study_key(clean)


def _sim_outcome_key(outcomes):
    """Everything a ColumnarDayOutcome decides, minus wall-clock time."""
    return [
        (
            o.allocation_starts.tolist(),
            o.consumption_starts.tolist(),
            o.settlement.ids,
            o.settlement.total_cost,
            o.settlement.payments.tolist(),
        )
        for o in outcomes
    ]


def _wide_columnar_neighborhood(n, seed):
    cols = ProfileGenerator().sample_population_columnar(
        np.random.default_rng(seed), n
    )
    return cols.to_neighborhood("wide")


class TestSharedMemoryEquivalence:
    """The shm transport is a pure transport change: results bit-identical."""

    def test_shm_workers4_matches_pickle_serial(self):
        neighborhood = _wide_columnar_neighborhood(35, seed=9)
        simulation = NeighborhoodSimulation(EnkiMechanism(seed=1), columnar=True)
        serial = simulation.run(
            neighborhood, days=4, seed=321, workers=1, transport="pickle"
        )
        fanned = simulation.run(
            neighborhood, days=4, seed=321, workers=4, transport="shm"
        )
        assert _sim_outcome_key(serial) == _sim_outcome_key(fanned)
        assert shm.active_segments() == ()


@pytest.mark.chaos
class TestSharedMemoryChaos:
    """SIGKILLed workers must not leak shared-memory segments."""

    def test_killed_workers_leak_no_segments(self, tmp_path):
        plan = ChaosPlan(root=31, crash_days=frozenset({0, 2}))
        injector = ChaosInjector(plan, fault_dir=str(tmp_path / "faults"))
        neighborhood = _wide_columnar_neighborhood(30, seed=13)
        chaotic = NeighborhoodSimulation(
            EnkiMechanism(seed=1), chaos=injector, columnar=True
        ).run(neighborhood, days=5, seed=99, workers=4, transport="shm")
        clean = NeighborhoodSimulation(
            EnkiMechanism(seed=1), columnar=True
        ).run(neighborhood, days=5, seed=99, workers=1, transport="pickle")
        # Crashed-and-retried days converge to the clean serial outcomes...
        assert _sim_outcome_key(chaotic) == _sim_outcome_key(clean)
        # ...and the arena's registry is empty: every owned segment was
        # unlinked even though some attached workers died mid-day.
        assert shm.active_segments() == ()
        leftovers = [
            name
            for name in os.listdir("/dev/shm")
            if name.startswith(f"enki-{os.getpid()}-")
        ]
        assert leftovers == []
