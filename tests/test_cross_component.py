"""Cross-component integration: unusual but supported configurations."""

import random

import numpy as np
import pytest

from repro.allocation.decentralized import BestResponseDynamicsAllocator
from repro.allocation.local_search import LocalSearchAllocator
from repro.allocation.optimal import BranchAndBoundAllocator
from repro.core.mechanism import EnkiMechanism, truthful_reports
from repro.core.types import HouseholdType, Neighborhood, Preference
from repro.io.audit import AuditLog, summarize_audit
from repro.market.dayahead import DayAheadMarket
from repro.market.procurement import ProcurementPipeline
from repro.market.supply import Generator, MeritOrderSupply
from repro.pricing.piecewise import TwoStepPricing
from repro.sim.profiles import ProfileGenerator, neighborhood_from_profiles
from repro.sim.season import SeasonSimulator


def _neighborhood(n=8, seed=3):
    generator = ProfileGenerator()
    profiles = generator.sample_population(np.random.default_rng(seed), n)
    return neighborhood_from_profiles(profiles, "wide")


class TestEnkiWithAlternativeAllocators:
    def test_exact_solver_backed_mechanism(self):
        mechanism = EnkiMechanism(
            allocator=BranchAndBoundAllocator(time_limit_s=10.0, seed=0)
        )
        outcome = mechanism.run_day(_neighborhood(), rng=random.Random(0))
        assert outcome.allocation_result.allocator_name == "optimal-bnb"
        assert outcome.settlement.neighborhood_utility >= 0.0

    def test_local_search_backed_mechanism(self):
        mechanism = EnkiMechanism(allocator=LocalSearchAllocator(restarts=2, seed=0))
        outcome = mechanism.run_day(_neighborhood(), rng=random.Random(0))
        assert outcome.settlement.total_cost > 0

    def test_decentralized_backed_mechanism(self):
        mechanism = EnkiMechanism(allocator=BestResponseDynamicsAllocator(seed=0))
        outcome = mechanism.run_day(_neighborhood(), rng=random.Random(0))
        assert outcome.settlement.neighborhood_utility >= 0.0

    def test_exact_allocation_never_costs_more_than_greedy(self):
        neighborhood = _neighborhood(seed=6)
        greedy_outcome = EnkiMechanism(seed=0).run_day(
            neighborhood, rng=random.Random(1)
        )
        exact_outcome = EnkiMechanism(
            allocator=BranchAndBoundAllocator(time_limit_s=10.0, seed=0)
        ).run_day(neighborhood, rng=random.Random(1))
        assert (
            exact_outcome.allocation_result.cost
            <= greedy_outcome.allocation_result.cost + 1e-9
        )


class TestEnkiWithPiecewisePricing:
    def test_full_day_under_two_step_pricing(self):
        pricing = TwoStepPricing(threshold_kw=8.0, low_rate=1.0, high_rate=6.0)
        mechanism = EnkiMechanism(pricing=pricing)
        outcome = mechanism.run_day(_neighborhood(), rng=random.Random(0))
        # Budget-balance identity is pricing-agnostic.
        assert outcome.settlement.neighborhood_utility == pytest.approx(
            0.2 * outcome.settlement.total_cost
        )


class TestMarketWithMeritOrder:
    def test_procurement_over_generator_stack(self):
        supply = MeritOrderSupply(
            [
                Generator("hydro", capacity_kwh=8.0, marginal_cost=1.0),
                Generator("gas", capacity_kwh=200.0, marginal_cost=4.0),
            ]
        )
        pipeline = ProcurementPipeline(
            DayAheadMarket(supply), mechanism=EnkiMechanism(seed=0)
        )
        neighborhood = _neighborhood(n=6, seed=4)
        day = pipeline.run_day(
            neighborhood, truthful_reports(neighborhood), rng=random.Random(0)
        )
        assert day.imbalance_cost == pytest.approx(0.0)
        assert day.day_ahead_cost > 0.0

    def test_capacity_violation_raises(self):
        supply = MeritOrderSupply(
            [Generator("tiny", capacity_kwh=1.0, marginal_cost=1.0)]
        )
        pipeline = ProcurementPipeline(
            DayAheadMarket(supply), mechanism=EnkiMechanism(seed=0)
        )
        neighborhood = _neighborhood(n=6, seed=4)
        with pytest.raises(ValueError):
            pipeline.run_day(
                neighborhood, truthful_reports(neighborhood), rng=random.Random(0)
            )


class TestSeasonWithAudit:
    def test_audited_season(self, tmp_path):
        log = AuditLog(str(tmp_path / "season.jsonl"))
        simulator = SeasonSimulator(EnkiMechanism(seed=0), churn_rate=0.1)
        season = simulator.run(n_households=5, weeks=2, seed=7)
        for day, outcome in enumerate(season.outcomes):
            log.log_day(day, outcome)
        summary = summarize_audit(log)
        assert summary.days == len(season.outcomes)
        assert summary.budget_balanced_every_day
        assert summary.total_revenue == pytest.approx(1.2 * summary.total_cost)


class TestExoticNeighborhoods:
    def test_rigid_plus_hyperflexible_mix(self):
        households = [
            HouseholdType("rigid", Preference.of(18, 20, 2), 5.0),
            HouseholdType("day", Preference.of(0, 24, 4), 5.0),
            HouseholdType("night", Preference.of(0, 8, 2), 5.0),
        ]
        outcome = EnkiMechanism(seed=0).run_day(
            Neighborhood.of(*households), rng=random.Random(0)
        )
        # The rigid household's allocation is forced.
        assert outcome.allocation["rigid"].start == 18
        # The fully flexible one should not be stacked onto the peak.
        flexibility = outcome.settlement.flexibility
        assert flexibility["day"] > flexibility["rigid"]

    def test_duration_filling_entire_day(self):
        households = [
            HouseholdType("always_on", Preference.of(0, 24, 24), 5.0),
            HouseholdType("evening", Preference.of(18, 22, 2), 5.0),
        ]
        outcome = EnkiMechanism(seed=0).run_day(
            Neighborhood.of(*households), rng=random.Random(0)
        )
        assert outcome.allocation["always_on"].length == 24
        assert outcome.settlement.neighborhood_utility >= 0.0

    def test_many_identical_households_symmetry(self):
        pref = Preference.of(18, 23, 2)
        households = [HouseholdType(f"h{i}", pref, 5.0) for i in range(9)]
        outcome = EnkiMechanism(seed=0).run_day(
            Neighborhood.of(*households), rng=random.Random(0)
        )
        settlement = outcome.settlement
        # Identical truthful cooperators must be billed identically per
        # flexibility; flexibility only differs via the shared coverage, so
        # all scores are equal and payments split evenly.
        payments = list(settlement.payments.values())
        assert max(payments) - min(payments) < 1e-9
