"""Tests for the decentralized best-response dynamics allocator."""

import random

import numpy as np
import pytest

from repro.allocation.base import AllocationProblem
from repro.allocation.decentralized import (
    BestResponseDynamicsAllocator,
    is_nash_equilibrium,
)
from repro.allocation.greedy import GreedyFlexibilityAllocator
from repro.allocation.random_alloc import EarliestAllocator
from repro.core.mechanism import truthful_reports
from repro.pricing.piecewise import TwoStepPricing
from repro.pricing.quadratic import QuadraticPricing
from repro.sim.profiles import ProfileGenerator, neighborhood_from_profiles


def _problem(pricing=None, n=10, seed=6):
    pricing = pricing if pricing is not None else QuadraticPricing()
    generator = ProfileGenerator()
    profiles = generator.sample_population(np.random.default_rng(seed), n)
    neighborhood = neighborhood_from_profiles(profiles, "wide")
    return AllocationProblem.from_reports(
        truthful_reports(neighborhood), neighborhood.households, pricing
    )


class TestBestResponseDynamics:
    def test_converges_to_nash_equilibrium(self):
        problem = _problem()
        allocator = BestResponseDynamicsAllocator(seed=0)
        result = allocator.solve(problem)
        assert allocator.last_stats is not None
        assert allocator.last_stats.converged
        assert is_nash_equilibrium(problem, result.allocation)

    def test_improves_on_uncoordinated_start(self):
        problem = _problem(seed=7)
        uncoordinated = EarliestAllocator().solve(problem)
        dynamics = BestResponseDynamicsAllocator(start="preferred", seed=0).solve(
            problem
        )
        assert dynamics.cost <= uncoordinated.cost + 1e-9

    def test_close_to_greedy_quality(self):
        problem = _problem(seed=8)
        dynamics = BestResponseDynamicsAllocator(seed=0).solve(problem)
        greedy = GreedyFlexibilityAllocator(seed=0).solve(problem)
        # A Nash equilibrium of this game is within a modest factor of the
        # centralized greedy on §VI workloads.
        assert dynamics.cost <= 1.5 * greedy.cost

    def test_random_start_supported(self):
        problem = _problem(seed=9)
        allocator = BestResponseDynamicsAllocator(start="random", seed=1)
        result = allocator.solve(problem)
        assert problem.is_feasible(result.allocation)

    def test_nonquadratic_pricing_supported(self):
        pricing = TwoStepPricing(threshold_kw=6.0, low_rate=1.0, high_rate=8.0)
        problem = _problem(pricing=pricing, n=6)
        allocator = BestResponseDynamicsAllocator(seed=0)
        result = allocator.solve(problem)
        assert problem.is_feasible(result.allocation)
        assert allocator.last_stats.converged

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BestResponseDynamicsAllocator(max_rounds=0)
        with pytest.raises(ValueError):
            BestResponseDynamicsAllocator(start="midnight")

    def test_nash_checker_detects_improvable_schedule(self):
        problem = _problem(seed=10)
        packed = EarliestAllocator().solve(problem)
        # Everyone at their window start is (generically) not a Nash
        # equilibrium on a peaky workload.
        if not is_nash_equilibrium(problem, packed.allocation):
            dynamics = BestResponseDynamicsAllocator(seed=0).solve(problem)
            assert dynamics.cost < packed.cost
