"""Unit tests for defection scores (Eq. 5, Example 4)."""

import math

import pytest

from repro.core.defection import defection_score, defection_scores, overlap_fraction
from repro.core.intervals import Interval
from repro.core.types import HouseholdType, Preference
from repro.pricing.quadratic import QuadraticPricing


def _types(*specs):
    return {
        hid: HouseholdType(hid, Preference.of(begin, end, end - begin), 5.0)
        for hid, begin, end in specs
    }


class TestOverlapFraction:
    def test_paper_example(self):
        # s = (14, 18), omega = (15, 19) -> o = 3/4.
        assert overlap_fraction(Interval(14, 18), Interval(15, 19)) == pytest.approx(0.75)

    def test_full_follow_is_one(self):
        assert overlap_fraction(Interval(18, 20), Interval(18, 20)) == 1.0

    def test_disjoint_is_zero(self):
        assert overlap_fraction(Interval(14, 16), Interval(18, 20)) == 0.0

    def test_mismatched_durations_rejected(self):
        with pytest.raises(ValueError):
            overlap_fraction(Interval(14, 18), Interval(15, 17))


class TestDefectionScore:
    def test_cooperator_scores_zero(self, pricing):
        types = _types(("A", 18, 20), ("B", 18, 20))
        allocation = {"A": Interval(18, 20), "B": Interval(18, 20)}
        score = defection_score("A", allocation, dict(allocation), types, pricing)
        assert score == 0.0

    def test_example4_defector_scores_positive(self, pricing):
        # A and B get the two hours of (18, 20); B consumes A's hour instead.
        types = _types(("A", 18, 20), ("B", 18, 20))
        allocation = {"A": Interval(18, 19), "B": Interval(19, 20)}
        consumption = {"A": Interval(18, 19), "B": Interval(18, 19)}
        scores = defection_scores(allocation, consumption, types, pricing)
        assert scores["A"] == 0.0
        assert scores["B"] > 0.0

    def test_exact_value_example4(self, pricing):
        # kappa(s) with r=2: two hours at 2 kW = 0.3*(4+4) = 2.4.
        # B deviates onto A's hour: one hour at 4 kW = 0.3*16 = 4.8.
        # delta_B = (4.8 - 2.4) / e^0 = 2.4.
        types = _types(("A", 18, 20), ("B", 18, 20))
        allocation = {"A": Interval(18, 19), "B": Interval(19, 20)}
        consumption = {"A": Interval(18, 19), "B": Interval(18, 19)}
        scores = defection_scores(allocation, consumption, types, pricing)
        assert scores["B"] == pytest.approx(2.4)

    def test_overlap_dampens_score(self, pricing):
        # Same cost harm with positive overlap divides by e^{o}.
        types = _types(("A", 10, 14), ("B", 10, 14))
        allocation = {"A": Interval(10, 14), "B": Interval(10, 14)}
        consumption_far = {"A": Interval(10, 14), "B": Interval(10, 14)}
        # Build a 2-household world where B shifts by 1 (overlap 3/4).
        types2 = _types(("A", 10, 14), ("B", 10, 15))
        allocation2 = {"A": Interval(10, 14), "B": Interval(10, 14)}
        consumption2 = {"A": Interval(10, 14), "B": Interval(11, 15)}
        raw_scores = defection_scores(allocation2, consumption2, types2, pricing)
        # Manual: kappa(s) = 0.3 * 4 * (4+4+4+4) = 19.2 with both at 4 kW...
        # simply assert the e^{o} division against the unclamped definition.
        cooperative = pricing.schedule_cost(allocation2, types2)
        deviated = dict(allocation2)
        deviated["B"] = consumption2["B"]
        harm = pricing.schedule_cost(deviated, types2) - cooperative
        expected = max(harm, 0.0) / math.exp(0.75)
        assert raw_scores["B"] == pytest.approx(expected)

    def test_beneficial_deviation_clamped_to_zero(self, pricing):
        # B's deviation away from the pile-up lowers cost; clamped to 0.
        types = _types(("A", 10, 12), ("B", 10, 14))
        allocation = {"A": Interval(10, 12), "B": Interval(10, 12)}
        consumption = {"A": Interval(10, 12), "B": Interval(12, 14)}
        scores = defection_scores(allocation, consumption, types, pricing)
        assert scores["B"] == 0.0

    def test_unclamped_mode_exposes_negative(self, pricing):
        types = _types(("A", 10, 12), ("B", 10, 14))
        allocation = {"A": Interval(10, 12), "B": Interval(10, 12)}
        consumption = {"A": Interval(10, 12), "B": Interval(12, 14)}
        scores = defection_scores(
            allocation, consumption, types, pricing, clamp_negative=False
        )
        assert scores["B"] < 0.0

    def test_batch_matches_single(self, pricing):
        types = _types(("A", 18, 20), ("B", 18, 20), ("C", 17, 21))
        allocation = {
            "A": Interval(18, 19),
            "B": Interval(19, 20),
            "C": Interval(17, 21),
        }
        consumption = {
            "A": Interval(18, 19),
            "B": Interval(18, 19),
            "C": Interval(17, 21),
        }
        batch = defection_scores(allocation, consumption, types, pricing)
        for hid in types:
            single = defection_score(hid, allocation, consumption, types, pricing)
            assert batch[hid] == pytest.approx(single)
