"""Unit tests for the simulation engines."""

import pytest

from repro.allocation.greedy import GreedyFlexibilityAllocator
from repro.allocation.random_alloc import RandomAllocator
from repro.core.mechanism import EnkiMechanism
from repro.sim.engine import (
    NeighborhoodSimulation,
    SocialWelfareStudy,
)
from repro.sim.metrics import speedup_series, summarize_records


class TestSocialWelfareStudy:
    def test_records_cover_all_allocators_and_days(self):
        study = SocialWelfareStudy(
            [GreedyFlexibilityAllocator(), RandomAllocator()]
        )
        records = study.run(6, days=3, seed=1)
        assert len(records) == 2 * 3
        assert {r.allocator for r in records} == {"enki-greedy", "random"}
        assert {r.day for r in records} == {0, 1, 2}

    def test_same_day_same_workload(self):
        # Both allocators must face the same instance: equal total energy.
        study = SocialWelfareStudy(
            [GreedyFlexibilityAllocator(), RandomAllocator()]
        )
        records = study.run(6, days=1, seed=2)
        # PAR can differ, but both saw 6 households.
        assert all(r.n_households == 6 for r in records)

    def test_reproducible_with_seed(self):
        study = SocialWelfareStudy([GreedyFlexibilityAllocator()])
        a = study.run(5, days=2, seed=3)
        b = study.run(5, days=2, seed=3)
        assert [r.cost for r in a] == pytest.approx([r.cost for r in b])

    def test_sweep_covers_populations(self):
        study = SocialWelfareStudy([GreedyFlexibilityAllocator()])
        records = study.sweep([4, 6], days=2, seed=4)
        assert {r.n_households for r in records} == {4, 6}

    def test_duplicate_allocator_names_rejected(self):
        with pytest.raises(ValueError):
            SocialWelfareStudy(
                [GreedyFlexibilityAllocator(), GreedyFlexibilityAllocator()]
            )

    def test_empty_allocators_rejected(self):
        with pytest.raises(ValueError):
            SocialWelfareStudy([])

    def test_invalid_days_rejected(self):
        study = SocialWelfareStudy([GreedyFlexibilityAllocator()])
        with pytest.raises(ValueError):
            study.run(5, days=0)


class TestSummaries:
    def test_summary_groups_and_cis(self):
        study = SocialWelfareStudy(
            [GreedyFlexibilityAllocator(), RandomAllocator()]
        )
        records = study.sweep([4, 6], days=3, seed=5)
        points = summarize_records(records)
        assert len(points) == 4
        for point in points:
            assert point.days == 3
            assert point.par.mean > 0
            assert point.cost.mean > 0

    def test_speedup_series(self):
        study = SocialWelfareStudy(
            [GreedyFlexibilityAllocator(), RandomAllocator()]
        )
        points = summarize_records(study.sweep([4], days=2, seed=6))
        series = speedup_series(points, fast="enki-greedy", slow="random")
        assert len(series) == 1
        assert series[0][0] == 4


class TestNeighborhoodSimulation:
    def test_truthful_multiday_run(self, small_random_neighborhood):
        simulation = NeighborhoodSimulation(EnkiMechanism())
        outcomes = simulation.run(small_random_neighborhood, days=3, seed=1)
        assert len(outcomes) == 3
        for outcome in outcomes:
            assert outcome.settlement.neighborhood_utility >= 0.0

    def test_invalid_days_rejected(self, small_random_neighborhood):
        simulation = NeighborhoodSimulation()
        with pytest.raises(ValueError):
            simulation.run(small_random_neighborhood, days=0)
