"""Smoke tests: every example script runs end to end and tells its story."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def _run_example(name: str, capsys, argv=None):
    path = EXAMPLES_DIR / name
    assert path.exists(), f"missing example {name}"
    old_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExampleScripts:
    def test_quickstart(self, capsys):
        out = _run_example("quickstart.py", capsys)
        assert "Allocations" in out
        assert "budget balance" in out
        assert "pays the least" in out

    def test_ev_charging(self, capsys):
        out = _run_example("ev_charging.py", capsys)
        assert "Uncoordinated charging" in out
        assert "Enki-coordinated charging" in out
        assert "cuts the neighborhood's power bill" in out

    def test_neighborhood_week(self, capsys):
        out = _run_example("neighborhood_week.py", capsys)
        assert "weekly household ledger" in out
        assert "shifty" in out
        assert "ECC now predicts" in out

    def test_smart_home_fleet(self, capsys):
        out = _run_example("smart_home_fleet.py", capsys)
        assert "Itemized bills" in out
        assert "Revenue check" in out

    @pytest.mark.slow
    def test_user_study_replay(self, capsys):
        out = _run_example("user_study_replay.py", capsys, argv=["5"])
        assert "Table II" in out
        assert "Figure 9" in out
