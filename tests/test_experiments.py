"""Scaled-down end-to-end runs of every experiment driver."""

import pytest

from repro.experiments import (
    ablation_ordering,
    ablation_pricing,
    ablation_xi,
    examples_section4,
    fig4_par,
    fig5_cost,
    fig6_time,
    fig7_incentive,
    fig8_true_interval,
    fig9_flexibility,
    table2_defection,
    table3_mannwhitney,
    table4_treatments,
    vcg_contrast,
)
from repro.experiments.social_welfare import run_social_welfare_study
from repro.experiments.runner import EXPERIMENTS, run_all, run_experiment

#: Shared small-scale social welfare run (the slow part of fig4-6).
_SMALL = dict(populations=(6, 10), days=2, seed=1, optimal_time_limit_s=5.0)


@pytest.fixture(scope="module")
def small_welfare():
    return run_social_welfare_study(**_SMALL)


@pytest.fixture(scope="module")
def small_study():
    from repro.experiments.user_study_run import run_default_study

    return run_default_study(seed=77)


class TestSocialWelfareExperiments:
    def test_fig4_series_shape(self, small_welfare):
        result = fig4_par.extract(small_welfare)
        assert [row.n_households for row in result.rows] == [6, 10]
        for row in result.rows:
            assert row.enki_par > 0 and row.optimal_par > 0
            # Greedy cannot beat the exact solver on cost, and its PAR
            # should track closely (the paper's "not large" difference).
            assert abs(row.gap) < 2.0
        assert "Enki PAR" in result.render()

    def test_fig5_enki_cost_close_to_optimal(self, small_welfare):
        result = fig5_cost.extract(small_welfare)
        for row in result.rows:
            assert row.enki_cost >= row.optimal_cost - 1e-9
            assert row.relative_excess < 0.25
        assert "Optimal cost" in result.render()

    def test_fig6_optimal_slower(self, small_welfare):
        result = fig6_time.extract(small_welfare)
        for row in result.rows:
            assert row.optimal_ms >= row.enki_ms
        assert "slowdown" in result.render()


class TestIncentiveExperiment:
    def test_fig7_small_scale(self):
        result = fig7_incentive.run(n_households=10, repeats=2, seed=4)
        assert (18, 20) in result.sweep.utilities
        assert result.sweep.truthful_window == (18, 20)
        rendered = result.render()
        assert "truthful" in rendered

    def test_fig7_rejects_tiny_population(self):
        with pytest.raises(ValueError):
            fig7_incentive.build_neighborhood(1)


class TestUserStudyExperiments:
    def test_tab2(self, small_study):
        result = table2_defection.extract(small_study)
        assert set(result.rates) == {"Overall", "Initial", "Defect", "Cooperate"}
        assert "paper" in result.render()

    def test_tab3(self, small_study):
        result = table3_mannwhitney.extract(small_study)
        assert result.tests["Overall"].p_value <= 1.0
        assert "p-value" in result.render()

    def test_tab4(self, small_study):
        result = table4_treatments.extract(small_study)
        assert set(result.rates) == {1, 2}
        assert "T1" in result.render()

    def test_fig8(self, small_study):
        result = fig8_true_interval.extract(small_study)
        assert len(result.analysis.subjects) == 16
        assert "Mann-Whitney" in result.render()

    def test_fig9(self, small_study):
        result = fig9_flexibility.extract(small_study)
        assert len(result.good_series) == 2
        assert len(result.intermediate_average) == 16
        assert "round" in result.render()


class TestExamplesAndAblations:
    def test_examples_section4_properties(self):
        result = examples_section4.run(seed=5)
        # Example 1: equal payments.
        p1 = result.example1.settlement.payments
        assert p1["A"] == pytest.approx(p1["B"]) == pytest.approx(p1["C"])
        # Example 2: A pays more.
        p2 = result.example2.settlement.payments
        assert p2["A"] > p2["B"] == pytest.approx(p2["C"])
        # Example 3: A pays least.
        p3 = result.example3.settlement.payments
        assert p3["A"] < p3["B"]
        # Example 4: defector B pays more.
        p4 = result.example4.settlement.payments
        assert p4["B"] > p4["A"]
        assert "Example 4" in result.render()

    def test_ablation_ordering_direction(self):
        result = ablation_ordering.run(populations=(8,), days=3, seed=2)
        enki = result.mean_cost("enki-greedy")
        rand = result.mean_cost("random")
        assert enki <= rand + 1e-9
        assert "enki-greedy" in result.render()

    def test_ablation_xi_monotone_surplus(self):
        result = ablation_xi.run(xis=(1.0, 1.5), n_households=8, days=2, seed=3)
        assert result.points[0].center_surplus <= result.points[1].center_surplus
        assert result.points[0].center_surplus == pytest.approx(0.0, abs=1e-6)
        assert "xi" in result.render()

    def test_ablation_pricing_runs_both_models(self):
        result = ablation_pricing.run(populations=(8,), days=2, seed=4)
        names = {p.pricing for p in result.points}
        assert names == {"QuadraticPricing", "TwoStepPricing"}
        assert "PAR" in result.render()

    def test_vcg_contrast_budget_story(self):
        result = vcg_contrast.run(n_households=6, days=2, seed=5)
        assert result.enki_always_balanced
        assert result.mean_slowdown >= 1.0
        assert "VCG surplus" in result.render()


class TestRunner:
    def test_registry_covers_all_artifacts(self):
        for required in (
            "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "tab2", "tab3", "tab4", "examples",
        ):
            assert required in EXPERIMENTS

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_run_experiment_returns_report(self):
        report = run_experiment("examples")
        assert report.experiment_id == "examples"
        assert report.rendered

    def test_run_all_subset(self):
        reports = run_all(["examples", "tab2"], seed=5)
        assert [r.experiment_id for r in reports] == ["examples", "tab2"]
