"""Scaled-down runs of the extension experiments."""

import pytest

from repro.experiments import (
    ablation_decentralized,
    ext_coalitions,
    ext_forecast_market,
)


class TestDecentralizedExperiment:
    def test_runs_and_converges(self):
        result = ablation_decentralized.run(populations=(8,), days=2, seed=1)
        assert len(result.points) == 1
        point = result.points[0]
        assert point.converged_fraction == 1.0
        assert point.relative_excess < 0.25
        assert "best-response" in result.render()


class TestCoalitionExperiment:
    def test_sweeps_sizes(self):
        result = ext_coalitions.run(sizes=(2, 3), n_households=10, days=2, seed=1)
        assert [p.max_size for p in result.points] == [2, 3]
        # Pre-committed zero-slack windows cannot raise flexibility.
        for point in result.points:
            assert point.mean_flexibility_drop >= -1e-9
        assert "Δcost" in result.render()


class TestConservationExperiment:
    def test_served_energy_weakly_decreasing_in_xi(self):
        from repro.experiments import ext_conservation

        result = ext_conservation.run(
            xis=(1.0, 2.0), n_households=8, days=2, seed=4
        )
        served = [p.mean_served_energy_kwh for p in result.points]
        assert served[1] <= served[0] + 1e-9
        assert "abstention" in result.render()


class TestCalculatorExperiment:
    def test_guided_pool_defects_less(self):
        from repro.experiments import ext_calculator

        result = ext_calculator.run(seed=11)
        assert result.overall_reduction > 0.0
        # Guided subjects only submit inside their true window, so the
        # guided pool's defection comes from the 4 random subjects alone.
        assert result.guided_rates["Overall"] <= 4 / 20 + 1e-9
        assert "calculator-guided" in result.render()


class TestForecastMarketExperiment:
    def test_oracle_has_no_imbalance(self):
        result = ext_forecast_market.run(n_households=6, days=6, seed=2)
        oracle = result.row("oracle")
        assert oracle.imbalance_cost == pytest.approx(0.0)
        assert oracle.defection_rate == 0.0

    def test_learners_pay_for_errors_but_function(self):
        result = ext_forecast_market.run(n_households=6, days=6, seed=2)
        for name in ("histogram", "ewma"):
            row = result.row(name)
            assert row.imbalance_cost >= 0.0
            assert 0.0 <= row.defection_rate <= 1.0
        assert "imbalance share" in result.render()

    def test_unknown_row_rejected(self):
        result = ext_forecast_market.run(n_households=4, days=3, seed=3)
        with pytest.raises(KeyError):
            result.row("crystal-ball")

    def test_too_few_days_rejected(self):
        with pytest.raises(ValueError):
            ext_forecast_market.run(days=1)
