"""Tests for the multi-appliance and coalition extensions."""

import random

import pytest

from repro.core.intervals import Interval
from repro.core.mechanism import EnkiMechanism
from repro.core.types import HouseholdType, Neighborhood, Preference
from repro.extensions.appliances import (
    ApplianceRequest,
    MultiApplianceEnki,
    MultiApplianceHousehold,
    expand,
    owner_of,
    pseudo_household_id,
)
from repro.extensions.coalitions import (
    Coalition,
    CoalitionEnki,
    compare_with_plain_enki,
    greedy_coalitions,
)


def _home(hid, base_charge=0.0):
    return MultiApplianceHousehold.of(
        hid,
        5.0,
        ApplianceRequest("ev", Preference.of(18, 24, 3), rating_kw=7.2),
        ApplianceRequest("dryer", Preference.of(8, 20, 1), rating_kw=3.0),
        base_charge=base_charge,
    )


class TestApplianceModel:
    def test_expand_creates_pseudo_households(self):
        neighborhood = expand([_home("h1"), _home("h2")])
        assert len(neighborhood) == 4
        assert pseudo_household_id("h1", "ev") in neighborhood
        ev = neighborhood[pseudo_household_id("h1", "ev")]
        assert ev.rating_kw == 7.2
        assert ev.true_preference.duration == 3

    def test_owner_roundtrip(self):
        assert owner_of(pseudo_household_id("h1", "ev")) == "h1"
        with pytest.raises(ValueError):
            owner_of("plain-id")

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiApplianceHousehold.of("h1", 5.0)  # no appliances
        with pytest.raises(ValueError):
            MultiApplianceHousehold.of(
                "h1",
                5.0,
                ApplianceRequest("ev", Preference.of(18, 24, 3)),
                ApplianceRequest("ev", Preference.of(8, 20, 1)),
            )
        with pytest.raises(ValueError):
            ApplianceRequest("", Preference.of(18, 24, 3))
        with pytest.raises(ValueError):
            ApplianceRequest("a::b", Preference.of(18, 24, 3))
        with pytest.raises(ValueError):
            _home("h1", base_charge=-1.0)

    def test_run_day_aggregates_bills(self):
        mechanism = MultiApplianceEnki(EnkiMechanism(seed=0))
        outcome = mechanism.run_day([_home("h1"), _home("h2")])
        assert set(outcome.bills) == {"h1", "h2"}
        bill = outcome.bills["h1"]
        assert set(bill.per_appliance_payment) == {"ev", "dryer"}
        assert bill.payment == pytest.approx(
            sum(bill.per_appliance_payment.values())
        )

    def test_base_charge_added_to_payment(self):
        mechanism = MultiApplianceEnki(EnkiMechanism(seed=0))
        plain = mechanism.run_day([_home("h1"), _home("h2")])
        charged = mechanism.run_day([_home("h1", base_charge=5.0), _home("h2")])
        assert charged.bills["h1"].payment == pytest.approx(
            plain.bills["h1"].payment + 5.0
        )
        assert charged.bills["h1"].utility == pytest.approx(
            plain.bills["h1"].utility - 5.0
        )

    def test_budget_balance_still_holds_per_day(self):
        mechanism = MultiApplianceEnki(EnkiMechanism(seed=0))
        outcome = mechanism.run_day([_home("h1"), _home("h2"), _home("h3")])
        appliance_revenue = sum(
            sum(bill.per_appliance_payment.values())
            for bill in outcome.bills.values()
        )
        assert appliance_revenue == pytest.approx(1.2 * outcome.total_cost)


class TestCoalitions:
    def _neighborhood(self):
        return Neighborhood.of(
            HouseholdType("a", Preference.of(17, 22, 2), 5.0),
            HouseholdType("b", Preference.of(18, 23, 2), 5.0),
            HouseholdType("c", Preference.of(18, 22, 2), 5.0),
            HouseholdType("d", Preference.of(6, 10, 2), 5.0),
        )

    def test_greedy_coalitions_group_overlaps(self):
        coalitions = greedy_coalitions(self._neighborhood(), max_size=3)
        assert sorted(len(c.members) for c in coalitions) == [1, 3]
        lone = next(c for c in coalitions if len(c.members) == 1)
        assert lone.members == ("d",)

    def test_max_size_respected(self):
        coalitions = greedy_coalitions(self._neighborhood(), max_size=2)
        assert all(len(c.members) <= 2 for c in coalitions)

    def test_coalition_reports_are_zero_slack(self):
        neighborhood = self._neighborhood()
        enki = CoalitionEnki(EnkiMechanism(seed=0))
        coalitions = greedy_coalitions(neighborhood)
        reports = enki.coalition_reports(neighborhood, coalitions)
        for hid, report in reports.items():
            assert report.preference.slack == 0
            true = neighborhood[hid].true_preference
            assert true.window.contains(report.preference.window)

    def test_coalition_day_runs_and_nobody_defects(self):
        neighborhood = self._neighborhood()
        enki = CoalitionEnki(EnkiMechanism(seed=0))
        outcome = enki.run_day(neighborhood, rng=random.Random(1))
        # Zero-slack truthful sub-windows: allocations are forced and lie
        # inside true windows, so nobody defects.
        for hid in neighborhood.ids():
            assert not outcome.defected(hid)

    def test_incomplete_coalitions_rejected(self):
        neighborhood = self._neighborhood()
        enki = CoalitionEnki(EnkiMechanism(seed=0))
        with pytest.raises(ValueError):
            enki.coalition_reports(neighborhood, [Coalition(("a", "b"))])

    def test_comparison_reports_flexibility_tension(self):
        comparison = compare_with_plain_enki(self._neighborhood(), seed=0)
        # Narrow committed windows can only lower mean flexibility scores.
        assert (
            comparison.coalition_mean_flexibility
            <= comparison.plain_mean_flexibility + 1e-9
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            Coalition(())
        with pytest.raises(ValueError):
            Coalition(("a", "a"))
        with pytest.raises(ValueError):
            greedy_coalitions(self._neighborhood(), max_size=0)
