"""Unit tests for flexibility scores (Eq. 4, Examples 2 and 3)."""

import numpy as np
import pytest

from repro.core.flexibility import (
    flexibility_score,
    predicted_flexibility,
    realized_flexibility,
    window_coverage,
)
from repro.core.intervals import Interval
from repro.core.types import Preference


def _coverage(prefs):
    return window_coverage({hid: p.window for hid, p in prefs.items()})


class TestWindowCoverage:
    def test_counts_per_hour(self):
        prefs = {
            "A": Preference.of(18, 19, 1),
            "B": Preference.of(18, 20, 1),
            "C": Preference.of(18, 20, 1),
        }
        coverage = _coverage(prefs)
        assert coverage[18] == 3
        assert coverage[19] == 2
        assert coverage[17] == 0
        assert coverage[20] == 0


class TestExample2:
    """Section IV-B3 works N_B and f_B out explicitly."""

    PREFS = {
        "A": Preference.of(18, 19, 1),
        "B": Preference.of(18, 20, 1),
        "C": Preference.of(18, 20, 1),
    }

    def test_fb_is_exactly_08(self):
        coverage = _coverage(self.PREFS)
        # N_B = (3 + 2) / 2 = 2.5; f_B = (2/1) / 2.5 = 0.8.
        assert flexibility_score(self.PREFS["B"], coverage) == pytest.approx(0.8)

    def test_narrower_household_less_flexible(self):
        scores = predicted_flexibility(self.PREFS)
        assert scores["A"] < scores["B"] == pytest.approx(scores["C"])


class TestExample3:
    """Off-peak windows score higher than wider peak windows."""

    PREFS = {
        "A": Preference.of(16, 18, 2),
        "B": Preference.of(18, 21, 2),
        "C": Preference.of(18, 21, 2),
    }

    def test_offpeak_a_most_flexible(self):
        scores = predicted_flexibility(self.PREFS)
        assert scores["B"] == pytest.approx(scores["C"])
        assert scores["B"] < scores["A"]

    def test_exact_values(self):
        scores = predicted_flexibility(self.PREFS)
        assert scores["A"] == pytest.approx(1.0)
        assert scores["B"] == pytest.approx(0.75)


class TestRealizedFlexibility:
    def test_defector_forfeits_flexibility(self):
        prefs = {
            "A": Preference.of(18, 20, 1),
            "B": Preference.of(18, 20, 1),
        }
        allocation = {"A": Interval(18, 19), "B": Interval(19, 20)}
        consumption = {"A": Interval(18, 19), "B": Interval(18, 19)}
        scores = realized_flexibility(prefs, allocation, consumption)
        assert scores["A"] > 0
        assert scores["B"] == 0.0

    def test_cooperators_keep_predicted_scores(self):
        prefs = {
            "A": Preference.of(18, 20, 1),
            "B": Preference.of(18, 20, 1),
        }
        allocation = {"A": Interval(18, 19), "B": Interval(19, 20)}
        scores = realized_flexibility(prefs, allocation, dict(allocation))
        predicted = predicted_flexibility(prefs)
        assert scores == pytest.approx(predicted)


class TestValidation:
    def test_zero_coverage_rejected(self):
        pref = Preference.of(18, 20, 1)
        with pytest.raises(ValueError):
            flexibility_score(pref, np.zeros(24))

    def test_wider_truthful_window_scores_higher_all_else_equal(self):
        # Property 1's flexibility side: same peers, wider own window.
        narrow = {
            "X": Preference.of(18, 20, 2),
            "P": Preference.of(10, 14, 2),
        }
        wide = {
            "X": Preference.of(17, 21, 2),
            "P": Preference.of(10, 14, 2),
        }
        assert predicted_flexibility(wide)["X"] > predicted_flexibility(narrow)["X"]
