"""End-to-end integration scenarios across the whole stack."""

import random

import numpy as np
import pytest

from repro.agents.behavior import MisreportBehavior, StubbornBehavior, TruthfulBehavior
from repro.agents.ecc import EccBehavior, EccUnit
from repro.agents.household import HouseholdAgent
from repro.agents.neighborhood import NeighborhoodController
from repro.core.mechanism import EnkiMechanism
from repro.core.types import HouseholdType, Neighborhood, Preference
from repro.mechanisms.proportional import ProportionalMechanism
from repro.sim.engine import NeighborhoodSimulation
from repro.sim.profiles import ProfileGenerator, neighborhood_from_profiles


def _agents(n, behavior_factory, prefix="hh", begin=17, end=23, duration=2):
    return [
        HouseholdAgent(
            HouseholdType(f"{prefix}{i}", Preference.of(begin, end, duration), 5.0),
            behavior_factory(),
        )
        for i in range(n)
    ]


class TestWeekLongNeighborhood:
    def test_mixed_population_week(self):
        """A week with truthful, misreporting, stubborn and ECC households."""
        agents = (
            _agents(4, TruthfulBehavior)
            + [
                HouseholdAgent(
                    HouseholdType("mis0", Preference.of(18, 20, 2), 5.0),
                    MisreportBehavior(shift=-3),
                ),
                HouseholdAgent(
                    HouseholdType("stub0", Preference.of(17, 21, 2), 5.0),
                    StubbornBehavior(),
                ),
                HouseholdAgent(
                    HouseholdType("ecc0", Preference.of(16, 22, 2), 5.0),
                    EccBehavior(EccUnit("ecc0")),
                ),
            ]
        )
        controller = NeighborhoodController(agents, EnkiMechanism())
        outcomes = controller.run_days(7, seed=42)

        # Budget balance holds every single day (Theorem 1).
        for outcome in outcomes:
            assert outcome.settlement.neighborhood_utility >= -1e-9

        # Truthful agents never defect.
        for agent in agents[:4]:
            assert agent.defection_rate() == 0.0

        # The ECC has learned the household's stable pattern by day 7.
        ecc_agent = agents[-1]
        assert ecc_agent.behavior.ecc.forecaster.n_observations == 7

    def test_defectors_pay_more_over_a_week(self):
        """Property 3 at the week level: a stubborn twin pays more."""
        agents = _agents(6, TruthfulBehavior) + [
            HouseholdAgent(
                HouseholdType("twin_t", Preference.of(18, 22, 2), 5.0),
                TruthfulBehavior(),
            ),
            HouseholdAgent(
                HouseholdType("twin_s", Preference.of(18, 22, 2), 5.0),
                StubbornBehavior(),
            ),
        ]
        controller = NeighborhoodController(agents, EnkiMechanism())
        controller.run_days(10, seed=11)
        truthful_twin = next(a for a in agents if a.household_id == "twin_t")
        stubborn_twin = next(a for a in agents if a.household_id == "twin_s")
        truthful_paid = sum(log.payment for log in truthful_twin.history)
        stubborn_paid = sum(log.payment for log in stubborn_twin.history)
        # The stubborn twin defects whenever its allocation differs from its
        # favourite slot, and those days cost it strictly more.
        if stubborn_twin.defection_rate() > 0:
            assert stubborn_paid > truthful_paid


class TestEnkiVsNoCoordination:
    def test_enki_lowers_cost_on_peaky_neighborhood(self):
        """The headline DSM claim: Enki's peak cost beats price-taking."""
        households = [
            HouseholdType(f"hh{i}", Preference.of(17, 23, 2), 5.0) for i in range(10)
        ]
        neighborhood = Neighborhood.of(*households)
        enki_outcome = EnkiMechanism().run_day(
            neighborhood, rng=random.Random(0)
        )
        baseline = ProportionalMechanism().run_day(
            neighborhood, rng=random.Random(0)
        )
        assert enki_outcome.settlement.total_cost < baseline.total_cost
        enki_par = enki_outcome.settlement.load_profile.peak_to_average_ratio()
        assert enki_par <= 24.0  # sanity

    def test_flat_demand_leaves_nothing_to_optimize(self):
        """With disjoint rigid windows both regimes coincide."""
        households = [
            HouseholdType(f"hh{i}", Preference.of(2 * i, 2 * i + 2, 2), 5.0)
            for i in range(6)
        ]
        neighborhood = Neighborhood.of(*households)
        enki_outcome = EnkiMechanism().run_day(neighborhood, rng=random.Random(0))
        baseline = ProportionalMechanism().run_day(
            neighborhood, rng=random.Random(0)
        )
        assert enki_outcome.settlement.total_cost == pytest.approx(
            baseline.total_cost
        )


class TestFailureInjection:
    def test_every_household_defecting_still_settles(self):
        """Worst case: everyone misreports and defects; invariants hold."""
        agents = [
            HouseholdAgent(
                HouseholdType(f"hh{i}", Preference.of(18, 21, 2), 5.0),
                MisreportBehavior(shift=-5),
            )
            for i in range(6)
        ]
        controller = NeighborhoodController(agents, EnkiMechanism())
        outcome = controller.run_day(random.Random(1))
        settlement = outcome.settlement
        assert sum(settlement.payments.values()) == pytest.approx(
            1.2 * settlement.total_cost
        )
        # All-defector day: flexibility all zero, normalization falls back
        # to the neutral midpoint and payments stay finite and positive.
        assert all(p > 0 for p in settlement.payments.values())

    def test_single_household_neighborhood(self):
        """Degenerate n=1 world runs end to end."""
        agents = _agents(1, TruthfulBehavior)
        controller = NeighborhoodController(agents, EnkiMechanism())
        outcome = controller.run_day(random.Random(0))
        hid = agents[0].household_id
        assert outcome.settlement.payments[hid] == pytest.approx(
            1.2 * outcome.settlement.total_cost
        )

    def test_zero_slack_everyone(self):
        """Windows equal to durations: allocation is forced, still settles."""
        households = [
            HouseholdType(f"hh{i}", Preference.of(18, 20, 2), 5.0) for i in range(5)
        ]
        neighborhood = Neighborhood.of(*households)
        outcome = EnkiMechanism().run_day(neighborhood, rng=random.Random(0))
        for hid in neighborhood.ids():
            assert outcome.allocation[hid].start == 18
        # Full pile-up: cost is 5 households * 2 kW stacked for 2 hours.
        assert outcome.settlement.total_cost == pytest.approx(0.3 * 2 * 100.0)


class TestSimulationEngineEndToEnd:
    def test_section6_style_run(self):
        """A miniature of the paper's Section VI loop, fully wired."""
        generator = ProfileGenerator()
        profiles = generator.sample_population(np.random.default_rng(0), 12)
        neighborhood = neighborhood_from_profiles(profiles, "wide")
        simulation = NeighborhoodSimulation(EnkiMechanism())
        outcomes = simulation.run(neighborhood, days=5, seed=3)
        pars = [
            o.settlement.load_profile.peak_to_average_ratio() for o in outcomes
        ]
        assert all(1.0 <= par <= 24.0 for par in pars)
        assert all(
            o.settlement.neighborhood_utility >= -1e-9 for o in outcomes
        )
