"""Unit tests for the time-grid and interval substrate."""

import pytest

from repro.core.intervals import (
    HOURS,
    HOURS_PER_DAY,
    Interval,
    IntervalError,
    block,
    feasible_starts,
    placements,
)


class TestIntervalConstruction:
    def test_grid_has_24_hours(self):
        assert HOURS_PER_DAY == 24
        assert HOURS == tuple(range(24))

    def test_valid_interval(self):
        interval = Interval(18, 22)
        assert interval.length == 4
        assert not interval.is_empty

    def test_boundary_24_is_valid_end(self):
        assert Interval(20, 24).length == 4

    def test_empty_interval(self):
        assert Interval(5, 5).is_empty

    def test_end_before_start_rejected(self):
        with pytest.raises(IntervalError):
            Interval(10, 9)

    def test_negative_start_rejected(self):
        with pytest.raises(IntervalError):
            Interval(-1, 5)

    def test_end_beyond_day_rejected(self):
        with pytest.raises(IntervalError):
            Interval(20, 25)

    def test_non_integer_endpoints_rejected(self):
        with pytest.raises(IntervalError):
            Interval(1.5, 3)  # type: ignore[arg-type]

    def test_intervals_are_hashable_and_comparable(self):
        assert Interval(1, 3) == Interval(1, 3)
        assert len({Interval(1, 3), Interval(1, 3), Interval(2, 3)}) == 2
        assert Interval(1, 3) < Interval(2, 3)


class TestSlots:
    def test_slots_are_half_open(self):
        assert list(Interval(18, 21).slots()) == [18, 19, 20]

    def test_contains_slot(self):
        interval = Interval(18, 21)
        assert interval.contains_slot(18)
        assert interval.contains_slot(20)
        assert not interval.contains_slot(21)
        assert not interval.contains_slot(17)

    def test_contains_interval(self):
        assert Interval(16, 24).contains(Interval(18, 20))
        assert Interval(16, 24).contains(Interval(16, 24))
        assert not Interval(16, 20).contains(Interval(18, 21))


class TestOverlap:
    def test_paper_overlap_example(self):
        # Section IV-B3: s = (14, 18), omega = (15, 19) -> |overlap| = 3.
        assert Interval(14, 18).overlap(Interval(15, 19)) == 3

    def test_disjoint_overlap_is_zero(self):
        assert Interval(2, 5).overlap(Interval(5, 8)) == 0
        assert Interval(2, 5).overlap(Interval(10, 12)) == 0

    def test_nested_overlap(self):
        assert Interval(0, 24).overlap(Interval(6, 9)) == 3

    def test_overlap_is_symmetric(self):
        a, b = Interval(3, 9), Interval(7, 12)
        assert a.overlap(b) == b.overlap(a) == 2

    def test_intersection_interval(self):
        assert Interval(3, 9).intersection(Interval(7, 12)) == Interval(7, 9)

    def test_intersection_of_disjoint_is_empty(self):
        assert Interval(3, 5).intersection(Interval(7, 12)).is_empty


class TestShiftAndBlock:
    def test_shift_right(self):
        assert Interval(3, 6).shift(2) == Interval(5, 8)

    def test_shift_left(self):
        assert Interval(3, 6).shift(-3) == Interval(0, 3)

    def test_shift_out_of_day_rejected(self):
        with pytest.raises(IntervalError):
            Interval(20, 24).shift(1)

    def test_block_builder(self):
        assert block(18, 2) == Interval(18, 20)


class TestFeasibleStarts:
    def test_simple_window(self):
        assert list(feasible_starts(Interval(18, 22), 2)) == [18, 19, 20]

    def test_exact_fit_has_single_start(self):
        assert list(feasible_starts(Interval(18, 20), 2)) == [18]

    def test_too_small_window_is_empty(self):
        assert list(feasible_starts(Interval(18, 19), 2)) == []

    def test_zero_duration_rejected(self):
        with pytest.raises(IntervalError):
            feasible_starts(Interval(18, 22), 0)

    def test_placements_enumerates_blocks(self):
        assert list(placements(Interval(18, 21), 2)) == [
            Interval(18, 20),
            Interval(19, 21),
        ]
