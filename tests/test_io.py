"""Tests for the persistence layer (JSON round-trips, CSV export)."""

import json

import pytest

from repro.core.intervals import Interval
from repro.core.mechanism import EnkiMechanism
from repro.core.types import HouseholdType, Neighborhood, Preference, Report
from repro.io.csvout import rows_to_csv, table_text_to_csv, write_csv
from repro.io.serialize import (
    SerializationError,
    day_outcome_from_dict,
    day_outcome_to_dict,
    household_from_dict,
    household_to_dict,
    interval_from_dict,
    interval_to_dict,
    load_neighborhood,
    neighborhood_from_dict,
    neighborhood_to_dict,
    preference_from_dict,
    preference_to_dict,
    report_from_dict,
    report_to_dict,
    save_day_outcome,
    save_neighborhood,
)
from repro.sim.results import format_table


class TestRoundTrips:
    def test_interval(self):
        interval = Interval(18, 22)
        assert interval_from_dict(interval_to_dict(interval)) == interval

    def test_preference(self):
        preference = Preference.of(16, 22, 3)
        assert preference_from_dict(preference_to_dict(preference)) == preference

    def test_household(self):
        household = HouseholdType("A", Preference.of(16, 22, 3), 5.5, rating_kw=3.3)
        clone = household_from_dict(household_to_dict(household))
        assert clone == household

    def test_household_rating_defaults(self):
        document = household_to_dict(
            HouseholdType("A", Preference.of(16, 22, 3), 5.5)
        )
        del document["rating_kw"]
        assert household_from_dict(document).rating_kw == 2.0

    def test_neighborhood(self, small_random_neighborhood):
        document = neighborhood_to_dict(small_random_neighborhood)
        clone = neighborhood_from_dict(document)
        assert clone.ids() == small_random_neighborhood.ids()
        for hid in clone.ids():
            assert clone[hid] == small_random_neighborhood[hid]

    def test_report(self):
        report = Report("A", Preference.of(16, 22, 3))
        assert report_from_dict(report_to_dict(report)) == report

    def test_json_is_stable(self, small_random_neighborhood):
        document = neighborhood_to_dict(small_random_neighborhood)
        encoded = json.dumps(document, sort_keys=True)
        assert json.dumps(neighborhood_to_dict(
            neighborhood_from_dict(json.loads(encoded))
        ), sort_keys=True) == encoded


class TestErrors:
    def test_missing_key(self):
        with pytest.raises(SerializationError):
            interval_from_dict({"start": 1})

    def test_wrong_schema_version(self, small_random_neighborhood):
        document = neighborhood_to_dict(small_random_neighborhood)
        document["schema_version"] = 99
        with pytest.raises(SerializationError):
            neighborhood_from_dict(document)


class TestFiles:
    def test_neighborhood_file_roundtrip(self, tmp_path, small_random_neighborhood):
        path = tmp_path / "neighborhood.json"
        save_neighborhood(small_random_neighborhood, str(path))
        clone = load_neighborhood(str(path))
        assert clone.ids() == small_random_neighborhood.ids()

    def test_day_outcome_archive(self, tmp_path, small_random_neighborhood):
        outcome = EnkiMechanism(seed=0).run_day(small_random_neighborhood)
        path = tmp_path / "day.json"
        save_day_outcome(outcome, str(path))
        document = json.loads(path.read_text())
        assert document["schema_version"] == 1
        assert set(document["allocation"]) == set(
            small_random_neighborhood.ids()
        )
        assert document["settlement"]["total_cost"] == pytest.approx(
            outcome.settlement.total_cost
        )
        assert len(document["settlement"]["load_profile"]) == 24

    def test_root_bound_matched_round_trips(self, small_random_neighborhood):
        outcome = EnkiMechanism(seed=0).run_day(small_random_neighborhood)
        document = day_outcome_to_dict(outcome)
        assert document["allocator"]["root_bound_matched"] in (True, False)
        document["allocator"]["root_bound_matched"] = True
        restored = day_outcome_from_dict(document)
        assert restored.allocation_result.root_bound_matched is True
        # Pre-acceleration archives lack the key and default to False.
        del document["allocator"]["root_bound_matched"]
        restored = day_outcome_from_dict(document)
        assert restored.allocation_result.root_bound_matched is False


class TestCsv:
    def test_rows_to_csv(self):
        text = rows_to_csv(["a", "b"], [(1, 2), (3, 4)])
        assert text == "a,b\n1,2\n3,4\n"

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rows_to_csv(["a", "b"], [(1, 2, 3)])

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(str(path), ["x"], [(1,), (2,)])
        assert path.read_text() == "x\n1\n2\n"

    def test_table_text_roundtrip(self):
        rendered = format_table(
            ["n", "cost ($)", "note"],
            [(10, "59.9", "ok"), (20, "242.9", "also ok")],
        )
        csv_text = table_text_to_csv(rendered)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "n,cost ($),note"
        assert lines[1] == "10,59.9,ok"
        assert lines[2] == "20,242.9,also ok"

    def test_non_table_text_rejected(self):
        with pytest.raises(ValueError):
            table_text_to_csv("just some prose\nwithout a rule")
