"""The JIT kernel subsystem: registry semantics and bit-identity.

Two families of guarantees are pinned here:

* **Registry** (:mod:`repro.kernels`): backend resolution order
  (``set_backend`` > ``ENKI_KERNELS`` > auto), env mirroring so worker
  processes inherit the choice, graceful once-logged degradation when
  numba is missing or forced-but-unimportable, idempotent warm-up, and
  the ``--kernels`` CLI flag.
* **Bit-identity**: the kernelized ``solve_columnar`` sweep reproduces a
  verbatim copy of the pre-kernel placement loop — identical starts and
  costs across random compiled problems, both pricing models, degenerate
  (slack-free and full-day) windows, n = 0/1 — and every backend that is
  importable agrees with every other on greedy placements and on B&B
  costs, node counts and proven verdicts.  As in the other equivalence
  suites, ratings are exact binary floats so bit-identity is
  well-defined.

On boxes without numba, ``BACKENDS`` collapses to ``["python"]``: the
cross-backend assertions then exercise the fallback against the legacy
oracle only, and the numba legs skip with the reason logged.
"""

from __future__ import annotations

import logging
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.allocation.arrays import CompiledProblem
from repro.allocation.base import problem_from_compiled
from repro.allocation.greedy import GreedyFlexibilityAllocator
from repro.allocation.optimal import BranchAndBoundAllocator
from repro.core.flexibility import flexibility_vector
from repro.core.intervals import HOURS_PER_DAY
from repro.kernels.bnb import child_expander
from repro.kernels.placement import PlacementScratch, place_day
from repro.pricing.load_profile import LoadProfile
from repro.pricing.piecewise import TwoStepPricing
from repro.pricing.quadratic import QuadraticPricing

#: Exactly-representable ratings (binary fractions, the paper's 2.0 among
#: them), keeping every load sum exact so "bit-identical" is meaningful.
_EXACT_RATINGS = (0.5, 1.0, 2.0, 4.0)

_PRICINGS = (
    QuadraticPricing(sigma=0.3),
    TwoStepPricing(threshold_kw=6.0, low_rate=1.0, high_rate=4.0),
)

#: Every backend usable on this box; the identity suites quantify over it.
BACKENDS = ["python"] + (["numba"] if kernels.numba_available() else [])


@pytest.fixture(autouse=True)
def clean_registry(monkeypatch):
    """Each test starts from an unforced, unprobed registry and clean env."""
    monkeypatch.delenv(kernels.KERNELS_ENV, raising=False)
    kernels._reset_backend_state()
    yield
    kernels._reset_backend_state()


# ------------------------------------------------------------------ oracle

#: Verbatim copy of the pre-kernel ``_RAMPS`` table.
_LEGACY_RAMPS = [None] + [
    np.minimum(np.arange(1, HOURS_PER_DAY + 1, dtype=float), float(v))
    for v in range(1, HOURS_PER_DAY + 1)
]


def _legacy_solve_columnar(allocator, compiled, pricing, rng):
    """The pre-kernel ``solve_columnar`` placement loop, kept verbatim.

    The oracle for the bit-identity suite: starts and cost exactly as the
    shipped implementation computed them before ``repro.kernels`` existed
    (per-item fancy-indexed window sums, per-item
    ``np.concatenate(([0.0], np.cumsum(...)))``, ``_RAMPS`` prefix
    updates).
    """
    n = len(compiled)
    starts_out = np.zeros(n, dtype=np.intp)
    if n == 0:
        return starts_out, pricing.cost(LoadProfile())
    flex = flexibility_vector(
        compiled.win_start, compiled.win_end, compiled.duration
    )
    keys = np.fromiter((rng.random() for _ in range(n)), dtype=float, count=n)
    order = np.lexsort((keys, flex if allocator.ascending else -flex))
    quadratic = isinstance(pricing, QuadraticPricing)
    loads = np.zeros(HOURS_PER_DAY, dtype=float)
    prefix = np.zeros(HOURS_PER_DAY + 1, dtype=float)
    win_start = compiled.win_start.tolist()
    win_end = compiled.win_end.tolist()
    duration = compiled.duration.tolist()
    rating = compiled.rating.tolist()
    start_index = compiled.start_index
    end_index = compiled.end_index
    for i in order.tolist():
        a, v, r = win_start[i], duration[i], rating[i]
        if quadratic:
            sums = prefix[end_index[i]] - prefix[start_index[i]]
            s = a + int(np.argmin(sums))
        else:
            b = win_end[i]
            hourly = pricing.marginal_cost_batch(loads[a:b], r)
            window_prefix = np.concatenate(([0.0], np.cumsum(hourly)))
            deltas = window_prefix[v:] - window_prefix[:-v]
            s = a + int(np.argmin(deltas))
        starts_out[i] = s
        loads[s:s + v] += r
        prefix[s + 1:] += r * _LEGACY_RAMPS[v][:HOURS_PER_DAY - s]
    profile = LoadProfile.from_arrays(
        starts_out, starts_out + compiled.duration, compiled.rating
    )
    return starts_out, pricing.cost(profile)


# -------------------------------------------------------------- strategies

@st.composite
def compiled_problems(draw, max_n=25):
    """Random compiled instances including n = 0/1 and degenerate windows.

    Windows include slack-free ones (window length == duration: exactly
    one placement) and full-day ones; ratings are exact binary floats.
    """
    n = draw(st.integers(min_value=0, max_value=max_n))
    rng = random.Random(draw(st.integers(min_value=0, max_value=2**16)))
    win_start, win_end, duration, rating = [], [], [], []
    for _ in range(n):
        a = rng.randint(0, HOURS_PER_DAY - 1)
        v = rng.randint(1, HOURS_PER_DAY - a)
        slack = rng.randint(0, HOURS_PER_DAY - a - v)
        win_start.append(a)
        win_end.append(a + v + slack)
        duration.append(v)
        rating.append(rng.choice(_EXACT_RATINGS))
    pricing = draw(st.sampled_from(_PRICINGS))
    compiled = CompiledProblem.from_arrays(
        ids=tuple(f"h{j:03d}" for j in range(n)),
        win_start=np.array(win_start, dtype=np.intp),
        win_end=np.array(win_end, dtype=np.intp),
        duration=np.array(duration, dtype=np.intp),
        rating=np.array(rating, dtype=np.float64),
        pricing=pricing,
    )
    return compiled, pricing


# ----------------------------------------------------- placement identity

class TestPlacementBitIdentity:
    @given(compiled_problems(), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=40, deadline=None)
    def test_every_backend_matches_the_legacy_loop(self, case, seed):
        compiled, pricing = case
        allocator = GreedyFlexibilityAllocator()
        legacy_starts, legacy_cost = _legacy_solve_columnar(
            allocator, compiled, pricing, random.Random(seed)
        )
        for backend in BACKENDS:
            with kernels.forced_backend(backend):
                result = allocator.solve_columnar(
                    compiled, pricing, random.Random(seed)
                )
            assert np.array_equal(result.starts, legacy_starts), backend
            assert result.cost == legacy_cost, backend
            if len(compiled) and type(pricing) in (
                QuadraticPricing, TwoStepPricing
            ):
                assert result.kernel_backend == backend

    @given(compiled_problems(max_n=12), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_place_day_backends_agree(self, case, seed):
        """Kernel-level identity, independent of the allocator wrapper."""
        compiled, pricing = case
        n = len(compiled)
        rng = np.random.default_rng(seed)
        order = np.asarray(rng.permutation(n), dtype=np.intp)
        reference = None
        for backend in BACKENDS:
            starts_out = np.zeros(n, dtype=np.intp)
            with kernels.forced_backend(backend):
                used = place_day(
                    order,
                    compiled.win_start,
                    compiled.win_end,
                    compiled.duration,
                    compiled.rating,
                    pricing,
                    starts_out,
                    PlacementScratch(),
                )
            assert used == backend
            if reference is None:
                reference = starts_out
            else:
                assert np.array_equal(starts_out, reference)

    def test_subclassed_pricing_takes_the_python_path(self):
        """``type() is`` dispatch: pricing subclasses never hit the JIT."""

        class TracedQuadratic(QuadraticPricing):
            pass

        compiled = CompiledProblem.from_arrays(
            ids=("a", "b"),
            win_start=np.array([0, 4], dtype=np.intp),
            win_end=np.array([6, 12], dtype=np.intp),
            duration=np.array([2, 3], dtype=np.intp),
            rating=np.array([2.0, 2.0]),
        )
        pricing = TracedQuadratic(sigma=0.3)
        starts_out = np.zeros(2, dtype=np.intp)
        order = np.array([0, 1], dtype=np.intp)
        for backend in BACKENDS:
            with kernels.forced_backend(backend):
                used = place_day(
                    order,
                    compiled.win_start,
                    compiled.win_end,
                    compiled.duration,
                    compiled.rating,
                    pricing,
                    starts_out,
                    PlacementScratch(),
                )
            assert used == "python"


# ----------------------------------------------------------- B&B identity

def _bnb_instances():
    """A handful of fixed small instances, symmetric households included."""
    cases = []
    rng = random.Random(11)
    for n in (1, 4, 7, 10):
        win_start, win_end, duration = [], [], []
        for _ in range(n):
            a = rng.randint(0, 16)
            v = rng.randint(1, 4)
            slack = rng.randint(0, min(6, HOURS_PER_DAY - a - v))
            win_start.append(a)
            win_end.append(a + v + slack)
            duration.append(v)
        compiled = CompiledProblem.from_arrays(
            ids=tuple(f"h{j}" for j in range(n)),
            win_start=np.array(win_start, dtype=np.intp),
            win_end=np.array(win_end, dtype=np.intp),
            duration=np.array(duration, dtype=np.intp),
            rating=np.full(n, 2.0),
            pricing=_PRICINGS[0],
        )
        cases.append(problem_from_compiled(compiled, _PRICINGS[0]))
    return cases


class TestBnbBitIdentity:
    def test_backends_agree_on_cost_nodes_and_verdict(self):
        for problem in _bnb_instances():
            reference = None
            for backend in BACKENDS:
                with kernels.forced_backend(backend):
                    result = BranchAndBoundAllocator(
                        time_limit_s=None, seed=1
                    ).solve(problem, random.Random(3))
                assert result.kernel_backend == backend
                summary = (
                    result.cost,
                    result.nodes_explored,
                    result.proven_optimal,
                    tuple(
                        result.allocation[item.household_id].start
                        for item in problem.items
                    ),
                )
                if reference is None:
                    reference = summary
                else:
                    assert summary == reference, backend

    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_expander_matches_inline_reference(self, seed):
        """One node expansion equals the exact numpy lines it replaced."""
        rng = np.random.default_rng(seed)
        loads_arr = rng.integers(0, 5, HOURS_PER_DAY).astype(np.float64) * 2.0
        a = int(rng.integers(0, 20))
        v = int(rng.integers(1, 4))
        count = int(rng.integers(1, HOURS_PER_DAY - a - v + 2))
        starts_idx = np.arange(a, a + count, dtype=np.intp)
        ends_idx = starts_idx + v
        two_sigma_r, self_term = 1.2, 3.6

        reference_prefix = np.zeros(HOURS_PER_DAY + 1)
        np.cumsum(loads_arr, out=reference_prefix[1:])
        reference_deltas = (
            two_sigma_r * (reference_prefix[ends_idx] - reference_prefix[starts_idx])
            + self_term
        )
        reference_order = np.argsort(reference_deltas, kind="stable")

        for backend in BACKENDS:
            with kernels.forced_backend(backend):
                expand, used = child_expander()
            assert used == backend
            prefix = np.zeros(HOURS_PER_DAY + 1)
            deltas_buf = np.empty(HOURS_PER_DAY)
            order_buf = np.empty(HOURS_PER_DAY, dtype=np.intp)
            deltas, order = expand(
                loads_arr, starts_idx, ends_idx, two_sigma_r, self_term,
                prefix, deltas_buf, order_buf,
            )
            assert np.array_equal(deltas, reference_deltas)
            assert np.array_equal(order, reference_order)


# ------------------------------------------------------- registry semantics

class TestRegistry:
    def test_env_var_forces_python(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNELS_ENV, "python")
        assert kernels.active_backend() == "python"
        # And the whole solve path still works under the forced fallback.
        compiled = CompiledProblem.from_arrays(
            ids=("a",),
            win_start=np.array([2], dtype=np.intp),
            win_end=np.array([10], dtype=np.intp),
            duration=np.array([3], dtype=np.intp),
            rating=np.array([2.0]),
        )
        result = GreedyFlexibilityAllocator(seed=0).solve_columnar(
            compiled, _PRICINGS[0]
        )
        assert result.kernel_backend == "python"

    def test_set_backend_mirrors_env_and_auto_clears(self, monkeypatch):
        import os

        kernels.set_backend("python")
        assert os.environ[kernels.KERNELS_ENV] == "python"
        assert kernels.active_backend() == "python"
        kernels.set_backend("auto")
        assert kernels.KERNELS_ENV not in os.environ

    def test_set_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="kernel backend"):
            kernels.set_backend("cython")

    def test_invalid_env_value_falls_back_to_auto(self, monkeypatch, caplog):
        monkeypatch.setenv(kernels.KERNELS_ENV, "jit")
        with caplog.at_level(logging.INFO, logger="repro.kernels"):
            first = kernels.active_backend()
            kernels.active_backend()
        assert first in ("numba", "python")
        warnings = [r for r in caplog.records if "unrecognized" in r.message]
        assert len(warnings) == 1

    def test_missing_numba_degrades_with_one_info_line(self, monkeypatch, caplog):
        monkeypatch.setattr(
            kernels, "_import_numba",
            lambda: (_ for _ in ()).throw(ImportError("No module named 'numba'")),
        )
        with caplog.at_level(logging.INFO, logger="repro.kernels"):
            assert kernels.active_backend() == "python"
            assert kernels.active_backend() == "python"
            assert not kernels.numba_available()
        infos = [
            r for r in caplog.records
            if "falling back to python kernels" in r.getMessage()
        ]
        assert len(infos) == 1
        assert infos[0].levelno == logging.INFO
        # The degraded registry still serves solves.
        meta = kernels.warm_kernels()
        assert meta["kernel_backend"] == "python"
        assert meta["numba_version"] is None
        assert meta["jit_compile_seconds"] == 0.0

    def test_forced_numba_without_numba_degrades_logged(self, monkeypatch, caplog):
        monkeypatch.setattr(
            kernels, "_import_numba",
            lambda: (_ for _ in ()).throw(ImportError("nope")),
        )
        with caplog.at_level(logging.INFO, logger="repro.kernels"):
            assert kernels.set_backend("numba") == "python"
            kernels.active_backend()
        assert any(
            "requested but numba is not importable" in r.getMessage()
            for r in caplog.records
        )

    def test_forced_backend_restores_previous_state(self, monkeypatch):
        import os

        monkeypatch.setenv(kernels.KERNELS_ENV, "auto")
        with kernels.forced_backend("python") as active:
            assert active == "python"
            assert os.environ[kernels.KERNELS_ENV] == "python"
        assert os.environ[kernels.KERNELS_ENV] == "auto"
        assert kernels._forced is None

    def test_warm_is_idempotent_and_jit_meta_consistent(self):
        first = kernels.warm_kernels()
        second = kernels.warm_kernels()
        assert first == second
        if kernels.numba_available():
            assert first["kernel_backend"] == "numba"
            assert first["numba_version"]
        else:
            assert first["kernel_backend"] == "python"

    def test_cli_kernels_flag_sets_backend(self, monkeypatch, capsys):
        import os

        from repro.cli import main

        monkeypatch.delenv(kernels.KERNELS_ENV, raising=False)
        assert main(["list", "--kernels", "python"]) == 0
        assert os.environ[kernels.KERNELS_ENV] == "python"
        assert kernels.active_backend() == "python"
        capsys.readouterr()
