"""Unit tests for LoadProfile and the PAR metric."""

import numpy as np
import pytest

from repro.core.intervals import Interval
from repro.core.types import HouseholdType, Preference
from repro.pricing.load_profile import LoadProfile


class TestConstruction:
    def test_empty_profile(self):
        profile = LoadProfile()
        assert profile.total_energy_kwh == 0.0
        assert profile.peak_kw == 0.0

    def test_from_values(self):
        profile = LoadProfile([1.0] * 24)
        assert profile.total_energy_kwh == pytest.approx(24.0)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            LoadProfile([1.0] * 23)

    def test_negative_load_rejected(self):
        values = [0.0] * 24
        values[3] = -1.0
        with pytest.raises(ValueError):
            LoadProfile(values)


class TestAddRemove:
    def test_add_block(self):
        profile = LoadProfile()
        profile.add(Interval(18, 21), 2.0)
        assert profile[18] == 2.0
        assert profile[20] == 2.0
        assert profile[21] == 0.0
        assert profile.total_energy_kwh == pytest.approx(6.0)

    def test_stacked_blocks(self):
        profile = LoadProfile()
        profile.add(Interval(18, 20), 2.0)
        profile.add(Interval(19, 21), 2.0)
        assert profile[19] == 4.0
        assert profile.peak_kw == 4.0

    def test_remove_restores(self):
        profile = LoadProfile()
        profile.add(Interval(18, 20), 2.0)
        profile.remove(Interval(18, 20), 2.0)
        assert profile.total_energy_kwh == 0.0

    def test_remove_underflow_rejected(self):
        profile = LoadProfile()
        profile.add(Interval(18, 20), 2.0)
        with pytest.raises(ValueError):
            profile.remove(Interval(18, 20), 3.0)

    def test_negative_rating_rejected(self):
        with pytest.raises(ValueError):
            LoadProfile().add(Interval(0, 2), -1.0)

    def test_copy_is_independent(self):
        profile = LoadProfile()
        profile.add(Interval(0, 2), 1.0)
        clone = profile.copy()
        clone.add(Interval(0, 2), 1.0)
        assert profile[0] == 1.0
        assert clone[0] == 2.0


class TestFromSchedule:
    def test_uses_household_ratings(self):
        types = {
            "A": HouseholdType("A", Preference.of(18, 20, 2), 5.0, rating_kw=3.0),
        }
        profile = LoadProfile.from_schedule({"A": Interval(18, 20)}, types)
        assert profile[18] == 3.0

    def test_defaults_to_2kw(self):
        profile = LoadProfile.from_schedule({"A": Interval(18, 20)})
        assert profile[18] == 2.0


class TestPar:
    def test_flat_profile_has_par_one(self):
        assert LoadProfile([2.0] * 24).peak_to_average_ratio() == pytest.approx(1.0)

    def test_single_spike_par(self):
        values = [0.0] * 24
        values[18] = 24.0
        # mean = 1, peak = 24.
        assert LoadProfile(values).peak_to_average_ratio() == pytest.approx(24.0)

    def test_zero_profile_par_is_zero(self):
        assert LoadProfile().peak_to_average_ratio() == 0.0

    def test_active_hours_variant(self):
        values = [0.0] * 24
        values[18] = 4.0
        values[19] = 2.0
        profile = LoadProfile(values)
        assert profile.peak_to_average_ratio(active_hours_only=True) == pytest.approx(
            4.0 / 3.0
        )

    def test_equality(self):
        assert LoadProfile([1.0] * 24) == LoadProfile([1.0] * 24)
        assert LoadProfile([1.0] * 24) != LoadProfile([2.0] * 24)
