"""Unit tests for the wholesale market substrate."""

import random

import pytest

from repro.core.intervals import HOURS_PER_DAY
from repro.core.mechanism import EnkiMechanism, truthful_reports
from repro.core.types import HouseholdType, Neighborhood, Preference
from repro.market.dayahead import DayAheadMarket
from repro.market.imbalance import TwoPriceImbalance
from repro.market.procurement import ProcurementPipeline
from repro.market.supply import (
    Generator,
    MeritOrderSupply,
    QuadraticSupplyCurve,
)


class TestMeritOrder:
    def _supply(self):
        return MeritOrderSupply(
            [
                Generator("coal", capacity_kwh=10.0, marginal_cost=2.0),
                Generator("hydro", capacity_kwh=5.0, marginal_cost=1.0),
                Generator("gas", capacity_kwh=20.0, marginal_cost=5.0),
            ]
        )

    def test_dispatch_cheapest_first(self):
        supply = self._supply()
        dispatch = supply.dispatch(12.0)
        assert [(g.name, q) for g, q in dispatch] == [
            ("hydro", 5.0),
            ("coal", 7.0),
        ]

    def test_clearing_price_is_marginal_unit(self):
        supply = self._supply()
        assert supply.clearing_price(3.0) == 1.0
        assert supply.clearing_price(12.0) == 2.0
        assert supply.clearing_price(20.0) == 5.0

    def test_energy_cost_integrates_stack(self):
        supply = self._supply()
        # 5 kWh hydro @1 + 7 kWh coal @2 = 19.
        assert supply.energy_cost(12.0) == pytest.approx(19.0)

    def test_capacity_enforced(self):
        supply = self._supply()
        with pytest.raises(ValueError):
            supply.dispatch(36.0)

    def test_prices_lower_off_peak(self):
        # The Section I observation: shallower demand -> cheaper marginal
        # unit.  Directly true of any merit order.
        supply = self._supply()
        assert supply.clearing_price(3.0) < supply.clearing_price(25.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MeritOrderSupply([])
        with pytest.raises(ValueError):
            Generator("bad", capacity_kwh=0.0, marginal_cost=1.0)
        with pytest.raises(ValueError):
            Generator("bad", capacity_kwh=1.0, marginal_cost=-1.0)


class TestQuadraticSupply:
    def test_reproduces_eq1(self):
        supply = QuadraticSupplyCurve(sigma=0.3)
        assert supply.energy_cost(10.0) == pytest.approx(30.0)
        assert supply.clearing_price(10.0) == pytest.approx(6.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            QuadraticSupplyCurve(sigma=0.0)
        with pytest.raises(ValueError):
            QuadraticSupplyCurve(0.3).energy_cost(-1.0)


class TestDayAheadMarket:
    def test_clears_24_hours(self):
        market = DayAheadMarket(QuadraticSupplyCurve(0.3))
        quantities = [float(h % 4) for h in range(HOURS_PER_DAY)]
        result = market.clear(quantities)
        assert len(result.clearings) == 24
        assert result.total_energy_kwh == pytest.approx(sum(quantities))
        assert result.total_cost == pytest.approx(
            sum(0.3 * q * q for q in quantities)
        )

    def test_price_profile_tracks_quantity(self):
        market = DayAheadMarket(QuadraticSupplyCurve(0.3))
        quantities = [0.0] * 24
        quantities[18] = 10.0
        prices = market.clear(quantities).price_profile()
        assert prices[18] == pytest.approx(6.0)
        assert prices[3] == 0.0

    def test_wrong_length_rejected(self):
        market = DayAheadMarket(QuadraticSupplyCurve(0.3))
        with pytest.raises(ValueError):
            market.clear([1.0] * 23)

    def test_negative_bid_rejected(self):
        market = DayAheadMarket(QuadraticSupplyCurve(0.3))
        bids = [0.0] * 24
        bids[0] = -1.0
        with pytest.raises(ValueError):
            market.clear(bids)


class TestImbalance:
    def _position(self, quantity=4.0):
        market = DayAheadMarket(QuadraticSupplyCurve(0.3))
        return market.clear([quantity] * 24)

    def test_perfect_forecast_pays_nothing(self):
        position = self._position()
        settlement = TwoPriceImbalance().settle(position, [4.0] * 24)
        assert settlement.total_charge == 0.0
        assert settlement.total_absolute_imbalance_kwh == 0.0

    def test_shortfall_charged_at_premium(self):
        position = self._position(quantity=4.0)
        consumed = [4.0] * 24
        consumed[10] = 6.0
        settlement = TwoPriceImbalance(shortfall_premium=1.5).settle(
            position, consumed
        )
        price = position.clearings[10].clearing_price
        assert settlement.total_charge == pytest.approx(2.0 * price * 1.5)

    def test_surplus_loses_discount(self):
        position = self._position(quantity=4.0)
        consumed = [4.0] * 24
        consumed[10] = 1.0
        settlement = TwoPriceImbalance(surplus_discount=0.5).settle(
            position, consumed
        )
        price = position.clearings[10].clearing_price
        assert settlement.total_charge == pytest.approx(3.0 * price * 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            TwoPriceImbalance(shortfall_premium=0.9)
        with pytest.raises(ValueError):
            TwoPriceImbalance(surplus_discount=1.1)
        position = self._position()
        with pytest.raises(ValueError):
            TwoPriceImbalance().settle(position, [1.0] * 23)


class TestProcurementPipeline:
    def test_truthful_reports_have_no_imbalance(self):
        households = [
            HouseholdType(f"hh{i}", Preference.of(16 + i % 3, 22, 2), 5.0)
            for i in range(6)
        ]
        neighborhood = Neighborhood.of(*households)
        pipeline = ProcurementPipeline(
            DayAheadMarket(QuadraticSupplyCurve(0.3)),
            mechanism=EnkiMechanism(seed=0),
        )
        day = pipeline.run_day(
            neighborhood, truthful_reports(neighborhood), rng=random.Random(0)
        )
        # Truthful reports -> allocation followed -> position == realized.
        assert day.imbalance_cost == pytest.approx(0.0)
        assert day.day_ahead_cost == pytest.approx(
            day.mechanism_day.settlement.total_cost
        )
        assert day.imbalance_share == 0.0

    def test_bad_forecast_pays_imbalance(self):
        from repro.core.types import Report

        households = [
            HouseholdType(f"hh{i}", Preference.of(18, 20, 2), 5.0) for i in range(4)
        ]
        neighborhood = Neighborhood.of(*households)
        # Every forecast misses the true window entirely.
        reports = {
            hh.household_id: Report(hh.household_id, Preference.of(8, 10, 2))
            for hh in neighborhood
        }
        pipeline = ProcurementPipeline(
            DayAheadMarket(QuadraticSupplyCurve(0.3)),
            mechanism=EnkiMechanism(seed=0),
        )
        day = pipeline.run_day(neighborhood, reports, rng=random.Random(0))
        assert day.imbalance_cost > 0.0
        assert day.imbalance_share > 0.0
