"""Integration-style tests of the EnkiMechanism day cycle."""

import random

import pytest

from repro.core.intervals import Interval
from repro.core.mechanism import (
    EnkiMechanism,
    closest_feasible_consumption,
    default_consumption,
    truthful_reports,
)
from repro.core.types import HouseholdType, Neighborhood, Preference, Report
from repro.pricing.quadratic import QuadraticPricing


class TestTruthfulReports:
    def test_everyone_reports_their_truth(self, example3_neighborhood):
        reports = truthful_reports(example3_neighborhood)
        for hid, report in reports.items():
            assert report.preference == example3_neighborhood[hid].true_preference


class TestClosestFeasibleConsumption:
    def test_allocation_inside_true_window_is_followed(self):
        result = closest_feasible_consumption(Interval(16, 24), 2, Interval(18, 20))
        assert result == Interval(18, 20)

    def test_allocation_outside_snaps_to_nearest_edge(self):
        # True window (18, 20), allocation (14, 16): only placement is (18, 20).
        result = closest_feasible_consumption(Interval(18, 20), 2, Interval(14, 16))
        assert result == Interval(18, 20)

    def test_partial_overlap_maximized(self):
        # True window (17, 21), allocation (15, 19): placements are
        # (17,19),(18,20),(19,21) with overlaps 2,1,0 -> picks (17, 19).
        result = closest_feasible_consumption(Interval(17, 21), 2, Interval(15, 19))
        assert result == Interval(17, 19)


class TestRunDay:
    def test_truthful_day_nobody_defects(self, mechanism, example3_neighborhood):
        outcome = mechanism.run_day(example3_neighborhood)
        for hid in example3_neighborhood.ids():
            assert not outcome.defected(hid)
            assert outcome.settlement.defection[hid] == 0.0
            assert outcome.settlement.flexibility[hid] > 0.0

    def test_budget_balance_theorem1(self, mechanism, small_random_neighborhood):
        outcome = mechanism.run_day(small_random_neighborhood)
        settlement = outcome.settlement
        expected = (mechanism.xi - 1.0) * settlement.total_cost
        assert settlement.neighborhood_utility == pytest.approx(expected)
        assert settlement.neighborhood_utility >= 0.0

    def test_payments_sum_to_scaled_cost(self, mechanism, small_random_neighborhood):
        outcome = mechanism.run_day(small_random_neighborhood)
        assert sum(outcome.settlement.payments.values()) == pytest.approx(
            mechanism.xi * outcome.settlement.total_cost
        )

    def test_truthful_allocation_maximizes_valuation(
        self, mechanism, example3_neighborhood
    ):
        outcome = mechanism.run_day(example3_neighborhood)
        for hh in example3_neighborhood:
            # tau = v -> valuation = rho * v / 2.
            expected = hh.valuation_factor * hh.duration / 2.0
            assert outcome.settlement.valuations[hh.household_id] == pytest.approx(
                expected
            )

    def test_misreporting_defector_settlement(self, mechanism):
        # Theorem 2 scenario: A's truth is (18, 20, 2) but reports (14, 20, 2).
        neighborhood = Neighborhood.of(
            HouseholdType("A", Preference.of(18, 20, 2), 5.0),
            HouseholdType("B", Preference.of(14, 20, 2), 5.0),
            HouseholdType("C", Preference.of(14, 20, 2), 5.0),
        )
        reports = dict(truthful_reports(neighborhood))
        reports["A"] = Report("A", Preference.of(14, 20, 2))
        outcome = mechanism.run_day(neighborhood, reports)
        if outcome.defected("A"):
            assert outcome.settlement.flexibility["A"] == 0.0
            assert outcome.settlement.defection["A"] >= 0.0

    def test_explicit_consumption_is_respected(self, mechanism):
        pref = Preference.of(18, 20, 1)
        neighborhood = Neighborhood.of(
            HouseholdType("A", pref, 5.0), HouseholdType("B", pref, 5.0)
        )
        reports = truthful_reports(neighborhood)
        allocation = mechanism.allocate(neighborhood, reports).allocation
        defector = "A" if allocation["A"] == Interval(19, 20) else "B"
        consumption = dict(allocation)
        other_hour = Interval(18, 19) if allocation[defector].start == 19 else Interval(19, 20)
        consumption[defector] = other_hour
        settlement = mechanism.settle(neighborhood, reports, allocation, consumption)
        cooperator = "B" if defector == "A" else "A"
        # Property 3: the defector pays more than the identical cooperator.
        assert settlement.payments[defector] > settlement.payments[cooperator]

    def test_determinism_under_fixed_rng(self, example3_neighborhood):
        m = EnkiMechanism()
        out1 = m.run_day(example3_neighborhood, rng=random.Random(3))
        out2 = m.run_day(example3_neighborhood, rng=random.Random(3))
        assert out1.allocation == out2.allocation
        assert out1.settlement.payments == pytest.approx(out2.settlement.payments)

    def test_default_consumption_defects_only_when_forced(
        self, example3_neighborhood, mechanism
    ):
        reports = truthful_reports(example3_neighborhood)
        allocation = mechanism.allocate(example3_neighborhood, reports).allocation
        consumption = default_consumption(example3_neighborhood, allocation)
        assert consumption == allocation


class TestMechanismValidation:
    def test_bad_k_rejected(self):
        with pytest.raises(ValueError):
            EnkiMechanism(k=0.0)

    def test_bad_xi_rejected(self):
        with pytest.raises(ValueError):
            EnkiMechanism(xi=0.9)

    def test_settle_rejects_inconsistent_allocation(
        self, mechanism, example3_neighborhood
    ):
        reports = truthful_reports(example3_neighborhood)
        with pytest.raises(Exception):
            mechanism.settle(
                example3_neighborhood,
                reports,
                {"A": Interval(0, 2)},
                {"A": Interval(0, 2)},
            )
