"""Unit tests for the comparable mechanisms (Enki adapter, VCG, proportional)."""

import random

import pytest

from repro.core.types import HouseholdType, Neighborhood, Preference
from repro.mechanisms.enki import EnkiComparisonMechanism
from repro.mechanisms.proportional import ProportionalMechanism
from repro.mechanisms.vcg import VcgMechanism


def _tiny_neighborhood():
    return Neighborhood.of(
        HouseholdType("A", Preference.of(16, 20, 2), 6.0),
        HouseholdType("B", Preference.of(17, 21, 2), 4.0),
        HouseholdType("C", Preference.of(18, 22, 2), 8.0),
    )


class TestEnkiAdapter:
    def test_run_day_shapes(self):
        result = EnkiComparisonMechanism().run_day(
            _tiny_neighborhood(), rng=random.Random(0)
        )
        assert result.mechanism == "enki"
        assert set(result.payments) == {"A", "B", "C"}
        assert result.budget_surplus >= 0.0

    def test_social_welfare_definition(self):
        result = EnkiComparisonMechanism().run_day(
            _tiny_neighborhood(), rng=random.Random(0)
        )
        assert result.social_welfare == pytest.approx(
            sum(result.valuations.values()) - result.total_cost
        )


class TestProportional:
    def test_preferred_placement_everyone_at_window_start(self):
        mechanism = ProportionalMechanism(placement="preferred")
        result = mechanism.run_day(_tiny_neighborhood(), rng=random.Random(0))
        assert result.consumption["A"].start == 16
        assert result.consumption["B"].start == 17

    def test_payments_proportional_to_energy(self):
        mechanism = ProportionalMechanism()
        result = mechanism.run_day(_tiny_neighborhood(), rng=random.Random(0))
        # Equal durations and ratings -> equal payments.
        values = list(result.payments.values())
        assert values[0] == pytest.approx(values[1])
        assert values[1] == pytest.approx(values[2])

    def test_budget_balanced_by_construction(self):
        result = ProportionalMechanism(xi=1.2).run_day(
            _tiny_neighborhood(), rng=random.Random(0)
        )
        assert result.budget_surplus == pytest.approx(0.2 * result.total_cost)

    def test_random_placement_within_true_window(self):
        mechanism = ProportionalMechanism(placement="random")
        result = mechanism.run_day(_tiny_neighborhood(), rng=random.Random(1))
        for hid, interval in result.consumption.items():
            true = _tiny_neighborhood()[hid].true_preference
            assert true.window.contains(interval)

    def test_invalid_placement_rejected(self):
        with pytest.raises(ValueError):
            ProportionalMechanism(placement="peak")

    def test_valuations_maximal(self):
        result = ProportionalMechanism().run_day(
            _tiny_neighborhood(), rng=random.Random(0)
        )
        assert result.valuations["A"] == pytest.approx(6.0)  # rho * v / 2


class TestVcg:
    def test_allocation_is_cost_minimal(self, pricing):
        from repro.allocation.base import AllocationProblem
        from repro.allocation.exhaustive import ExhaustiveAllocator
        from repro.core.mechanism import truthful_reports

        neighborhood = _tiny_neighborhood()
        vcg = VcgMechanism(solver_time_limit_s=10.0, seed=0)
        result = vcg.run_day(neighborhood, rng=random.Random(0))
        problem = AllocationProblem.from_reports(
            truthful_reports(neighborhood), neighborhood.households, pricing
        )
        reference = ExhaustiveAllocator().solve(problem)
        assert problem.cost(result.allocation) == pytest.approx(reference.cost)

    def test_payments_are_clarke_pivots(self):
        # Two households with disjoint windows impose no externality on
        # each other, so each pays exactly the cost share it causes.
        neighborhood = Neighborhood.of(
            HouseholdType("A", Preference.of(0, 4, 2), 6.0),
            HouseholdType("B", Preference.of(12, 16, 2), 4.0),
        )
        result = VcgMechanism(seed=0).run_day(neighborhood, rng=random.Random(0))
        # W(-i) = -cost of the other alone; others' value at chosen outcome
        # is max, so p_i = chosen_cost - other_cost = own block cost (2.4).
        assert result.payments["A"] == pytest.approx(2.4)
        assert result.payments["B"] == pytest.approx(2.4)

    def test_vcg_can_run_deficit_relative_to_enki(self):
        # The key Section II contrast: VCG's revenue has no floor at kappa.
        neighborhood = _tiny_neighborhood()
        vcg = VcgMechanism(seed=0).run_day(neighborhood, rng=random.Random(0))
        enki = EnkiComparisonMechanism().run_day(
            neighborhood, rng=random.Random(0)
        )
        assert enki.budget_surplus >= 0.0
        assert vcg.budget_surplus < enki.budget_surplus

    def test_single_household_pays_its_own_cost(self):
        neighborhood = Neighborhood.of(
            HouseholdType("A", Preference.of(16, 20, 2), 6.0)
        )
        result = VcgMechanism(seed=0).run_day(neighborhood, rng=random.Random(0))
        # W(-A) = 0; others' value = 0; chosen cost = 2.4 -> p_A = 2.4.
        assert result.payments["A"] == pytest.approx(2.4)
