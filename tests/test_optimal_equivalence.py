"""Equivalence suite: accelerated exact solver vs the frozen seed solver.

``tests/reference_optimal.py`` is a byte-frozen copy of the scalar
branch-and-bound solver from before the structure-of-arrays acceleration.
The accelerated solver must be a pure speedup: same incumbent allocation,
same cost, same ``proven_optimal`` verdict, and node counts that never
grow (the root certificate now honestly reports its one evaluated node
where the reference reported zero).

The randomized instances deliberately use power ratings that are exact
binary floats (as the paper's 2 kW default is), which makes every load
sum exactly representable — the regime in which the vectorized kernels
are provably bit-identical to the scalar reference arithmetic.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation.base import AllocationItem, AllocationProblem
from repro.allocation.optimal import BranchAndBoundAllocator
from repro.allocation.relaxation import (
    fast_transportation_bound,
    transportation_bound,
)
from repro.core.intervals import Interval
from repro.pricing.quadratic import QuadraticPricing

from tests.reference_optimal import ReferenceBranchAndBoundAllocator

#: Exactly-representable ratings (binary fractions), the paper's 2.0 among
#: them; keeps all load arithmetic exact so bit-identity is well-defined.
_EXACT_RATINGS = (0.5, 1.0, 2.0, 4.0)


# ---------------------------------------------------------------- strategies

@st.composite
def allocation_problems(draw, max_households=12):
    """Random Eq. 2 instances: n <= 12, windows in a 24-hour day."""
    n = draw(st.integers(min_value=1, max_value=max_households))
    uniform = draw(st.booleans())
    shared_rating = draw(st.sampled_from(_EXACT_RATINGS))
    items = []
    for j in range(n):
        start = draw(st.integers(min_value=0, max_value=20))
        length = draw(st.integers(min_value=1, max_value=min(8, 24 - start)))
        duration = draw(st.integers(min_value=1, max_value=length))
        rating = (
            shared_rating if uniform else draw(st.sampled_from(_EXACT_RATINGS))
        )
        items.append(
            AllocationItem(
                household_id=f"hh{j:02d}",
                window=Interval(start, start + length),
                duration=duration,
                rating_kw=rating,
            )
        )
    return AllocationProblem(tuple(items), QuadraticPricing(sigma=0.3))


def _solve_both(problem, seed):
    new = BranchAndBoundAllocator(time_limit_s=None, seed=1).solve(
        problem, random.Random(seed)
    )
    ref = ReferenceBranchAndBoundAllocator(time_limit_s=None, seed=1).solve(
        problem, random.Random(seed)
    )
    return new, ref


# ---------------------------------------------------------------- properties

class TestAcceleratedMatchesReference:
    @given(allocation_problems(), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=40, deadline=None)
    def test_same_allocation_cost_and_verdict(self, problem, seed):
        new, ref = _solve_both(problem, seed)
        assert new.allocation == ref.allocation
        assert new.cost == ref.cost
        assert new.proven_optimal == ref.proven_optimal
        assert new.lower_bound == ref.lower_bound

    @given(allocation_problems(), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=40, deadline=None)
    def test_allocation_feasible(self, problem, seed):
        new, _ = _solve_both(problem, seed)
        for item in problem.items:
            served = new.allocation[item.household_id]
            # Exactly v_i contiguous hours, entirely inside the window.
            assert served.length == item.duration
            assert item.window.contains(served)
        assert problem.is_feasible(new.allocation)

    @given(allocation_problems(), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=40, deadline=None)
    def test_node_counts_never_grow(self, problem, seed):
        new, ref = _solve_both(problem, seed)
        if ref.nodes_explored == 0:
            # Root certificate: the reference under-reported zero nodes;
            # the accelerated solver counts the root evaluation.
            assert new.nodes_explored == 1
            assert new.root_bound_matched
        else:
            assert new.nodes_explored <= ref.nodes_explored


# ------------------------------------------------------- fixed-seed fixtures

def _random_problem(rng, n, uniform=True):
    items = []
    rating = 2.0
    for j in range(n):
        start = rng.randint(0, 19)
        length = rng.randint(1, min(8, 24 - start))
        duration = rng.randint(1, length)
        r = rating if uniform else rng.choice(_EXACT_RATINGS)
        items.append(
            AllocationItem(f"hh{j:02d}", Interval(start, start + length), duration, r)
        )
    return AllocationProblem(tuple(items), QuadraticPricing(sigma=0.3))


#: (seed, n, uniform) regression fixtures pinned forever; the node-count
#: monotonicity contract binds on these exact instances.
_FIXTURES = (
    (11, 6, True),
    (23, 8, True),
    (37, 10, True),
    (41, 12, True),
    (53, 9, False),
    (67, 12, False),
)


@pytest.mark.parametrize("seed,n,uniform", _FIXTURES)
def test_regression_node_count_monotonic(seed, n, uniform):
    problem = _random_problem(random.Random(seed), n, uniform)
    new, ref = _solve_both(problem, seed)
    assert new.allocation == ref.allocation
    assert new.cost == ref.cost
    assert new.proven_optimal == ref.proven_optimal
    baseline = max(ref.nodes_explored, 1)
    assert new.nodes_explored <= baseline, (
        f"accelerated solver explored {new.nodes_explored} nodes, "
        f"reference {ref.nodes_explored}"
    )


# ------------------------------------------------- flow kernel cross-checks

class TestFastTransportationBound:
    @given(
        st.integers(min_value=0, max_value=2**16),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_networkx_simplex(self, seed, n):
        rng = random.Random(seed)
        windows, durations = [], []
        for _ in range(n):
            start = rng.randint(0, 20)
            length = rng.randint(1, min(6, 24 - start))
            windows.append(list(range(start, start + length)))
            durations.append(rng.randint(1, length))
        rating, sigma = 2.0, 0.3
        loads = [rng.randint(0, 6) * rating for _ in range(24)]
        assert fast_transportation_bound(
            loads, windows, durations, rating, sigma
        ) == transportation_bound(loads, windows, durations, rating, sigma)

    def test_empty_problem_is_base_cost(self):
        loads = [2.0] * 24
        assert fast_transportation_bound(loads, [], [], 2.0, 0.3) == (
            0.3 * sum(load * load for load in loads)
        )


# -------------------------------------------------------- result surfacing

def test_root_certificate_counts_one_node():
    """A root-certified solve reports the root evaluation, not zero work."""
    # Wide identical windows: the relaxation matches the incumbent at once.
    items = tuple(
        AllocationItem(f"hh{j}", Interval(0, 24), 2, 2.0) for j in range(6)
    )
    problem = AllocationProblem(items, QuadraticPricing(sigma=0.3))
    result = BranchAndBoundAllocator(time_limit_s=None, seed=1).solve(
        problem, random.Random(0)
    )
    assert result.proven_optimal
    assert result.root_bound_matched
    assert result.nodes_explored == 1


def test_searched_solve_reports_certificate_flag_honestly():
    """A solve that actually searches keeps root_bound_matched truthful."""
    rng = random.Random(99)
    problem = _random_problem(rng, 10)
    result = BranchAndBoundAllocator(time_limit_s=None, seed=1).solve(
        problem, random.Random(99)
    )
    ref = ReferenceBranchAndBoundAllocator(time_limit_s=None, seed=1).solve(
        problem, random.Random(99)
    )
    assert result.proven_optimal
    assert result.cost == ref.cost
    if result.nodes_explored > 1:
        # The search ran; the flag may be set only via the quantum
        # certificate raised from a leaf.
        assert result.nodes_explored == ref.nodes_explored
