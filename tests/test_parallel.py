"""Determinism regressions for the parallel simulation runtime.

Three guarantees are pinned here:

* seeded runs are reproducible — the same seed twice yields identical
  records;
* parallel runs (``workers=4``) are record-for-record identical to serial
  runs (``workers=1``) at the same seed, for both engines.  Instances are
  sized so branch-and-bound always proves optimality within its budget —
  a *deadline-cut* anytime search is wall-clock dependent by design and
  belongs in the benchmarks, not here;
* the worker-resolution helpers behave as documented.

Wall times are excluded from every comparison: they legitimately vary
between runs and carry no scheduling information.
"""

import numpy as np
import pytest

from repro.allocation.greedy import GreedyFlexibilityAllocator
from repro.allocation.optimal import BranchAndBoundAllocator
from repro.core.mechanism import EnkiMechanism
from repro.sim.engine import NeighborhoodSimulation, SocialWelfareStudy
from repro.sim.parallel import available_cores, map_tasks, resolve_workers
from repro.sim.profiles import ProfileGenerator, neighborhood_from_profiles
from repro.sim.rng import make_day_rngs

SEED = 2017


def _study():
    return SocialWelfareStudy(
        allocators=[
            GreedyFlexibilityAllocator(),
            # Small enough (n=8) that the search always completes, so the
            # result is a pure function of (seed, day) — no anytime cutoff.
            BranchAndBoundAllocator(time_limit_s=60.0),
        ]
    )


def _study_key(records):
    return [
        (r.day, r.n_households, r.allocator, r.par, r.cost, r.proven_optimal,
         r.nodes_explored)
        for r in records
    ]


def _neighborhood(n=10, seed=3):
    generator = ProfileGenerator()
    profiles = generator.sample_population(np.random.default_rng(seed), n)
    return neighborhood_from_profiles(profiles, "wide")


def _outcome_key(outcomes):
    """Everything a DayOutcome decides, minus wall-clock time."""
    return [
        (
            sorted((hid, rep.preference) for hid, rep in o.reports.items()),
            sorted(o.allocation.items()),
            sorted(o.consumption.items()),
            o.settlement.total_cost,
            sorted(o.settlement.payments.items()),
            sorted(o.settlement.utilities.items()),
            o.settlement.neighborhood_utility,
            o.settlement.load_profile.as_array().tolist(),
        )
        for o in outcomes
    ]


class TestSameSeedReproducibility:
    def test_study_same_seed_twice_is_identical(self):
        study = _study()
        first = study.run(8, days=3, seed=SEED)
        second = study.run(8, days=3, seed=SEED)
        assert _study_key(first) == _study_key(second)
        assert all(r.proven_optimal for r in first if r.allocator != "enki-greedy")

    def test_simulation_same_seed_twice_is_identical(self):
        simulation = NeighborhoodSimulation(EnkiMechanism(seed=0))
        neighborhood = _neighborhood()
        first = simulation.run(neighborhood, days=3, seed=SEED)
        second = simulation.run(neighborhood, days=3, seed=SEED)
        assert _outcome_key(first) == _outcome_key(second)

    def test_different_seeds_differ(self):
        study = _study()
        assert _study_key(study.run(8, days=2, seed=1)) != _study_key(
            study.run(8, days=2, seed=2)
        )


class TestParallelBitIdentity:
    def test_study_parallel_matches_serial(self):
        study = _study()
        serial = study.run(8, days=4, seed=SEED, workers=1)
        parallel = study.run(8, days=4, seed=SEED, workers=4)
        assert _study_key(serial) == _study_key(parallel)

    def test_study_sweep_parallel_matches_serial(self):
        study = SocialWelfareStudy(allocators=[GreedyFlexibilityAllocator()])
        serial = study.sweep((6, 10), days=2, seed=SEED, workers=1)
        parallel = study.sweep((6, 10), days=2, seed=SEED, workers=4)
        assert _study_key(serial) == _study_key(parallel)

    def test_simulation_parallel_matches_serial(self):
        simulation = NeighborhoodSimulation(EnkiMechanism(seed=0))
        neighborhood = _neighborhood()
        serial = simulation.run(neighborhood, days=4, seed=SEED, workers=1)
        parallel = simulation.run(neighborhood, days=4, seed=SEED, workers=4)
        assert _outcome_key(serial) == _outcome_key(parallel)

    def test_all_cores_sentinel_matches_serial(self):
        study = SocialWelfareStudy(allocators=[GreedyFlexibilityAllocator()])
        serial = study.run(8, days=3, seed=SEED, workers=1)
        all_cores = study.run(8, days=3, seed=SEED, workers=0)
        assert _study_key(serial) == _study_key(all_cores)


class TestDaySubstreams:
    def test_day_rngs_are_pure_functions_of_seed_and_day(self):
        rng_a, np_a = make_day_rngs(SEED, 5)
        rng_b, np_b = make_day_rngs(SEED, 5)
        assert rng_a.random() == rng_b.random()
        assert np_a.random() == np_b.random()

    def test_day_rngs_differ_across_days(self):
        rng_a, np_a = make_day_rngs(SEED, 0)
        rng_b, np_b = make_day_rngs(SEED, 1)
        assert rng_a.random() != rng_b.random()
        assert np_a.random() != np_b.random()


def _double(x):
    return 2 * x


class TestWorkerPlumbing:
    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(0) == available_cores()
        assert resolve_workers(-1) == available_cores()

    def test_resolve_workers_warns_on_oversubscription(self, caplog):
        cores = available_cores()
        with caplog.at_level("WARNING", logger="repro.sim.parallel"):
            assert resolve_workers(cores + 3) == cores + 3
        assert any(
            "exceeds" in record.getMessage() for record in caplog.records
        ), "oversubscribed workers should log a one-line warning"

    def test_resolve_workers_silent_within_core_count(self, caplog):
        with caplog.at_level("WARNING", logger="repro.sim.parallel"):
            resolve_workers(1)
            resolve_workers(available_cores())
        assert not caplog.records

    def test_map_tasks_preserves_order(self):
        payloads = list(range(12))
        assert map_tasks(_double, payloads, workers=1) == [2 * x for x in payloads]
        assert map_tasks(_double, payloads, workers=3) == [2 * x for x in payloads]

    def test_map_tasks_empty(self):
        assert map_tasks(_double, [], workers=4) == []

    def test_engine_rejects_zero_days(self):
        with pytest.raises(ValueError):
            _study().run(8, days=0, seed=SEED)
