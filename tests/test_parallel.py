"""Determinism regressions for the parallel simulation runtime.

Three guarantees are pinned here:

* seeded runs are reproducible — the same seed twice yields identical
  records;
* parallel runs (``workers=4``) are record-for-record identical to serial
  runs (``workers=1``) at the same seed, for both engines.  Instances are
  sized so branch-and-bound always proves optimality within its budget —
  a *deadline-cut* anytime search is wall-clock dependent by design and
  belongs in the benchmarks, not here;
* the worker-resolution helpers behave as documented.

Wall times are excluded from every comparison: they legitimately vary
between runs and carry no scheduling information.
"""

import os
import pickle
import random
import time

import numpy as np
import pytest

from repro.allocation.greedy import GreedyFlexibilityAllocator
from repro.allocation.optimal import BranchAndBoundAllocator
from repro.core.mechanism import EnkiMechanism
from repro.sim import parallel as parallel_mod
from repro.sim import shm
from repro.sim.engine import (
    NeighborhoodSimulation,
    SocialWelfareStudy,
    run_columnar_day_sharded,
)
from repro.sim.parallel import available_cores, map_tasks, resolve_workers
from repro.sim.profiles import ProfileGenerator, neighborhood_from_profiles
from repro.sim.rng import make_day_rngs

SEED = 2017


def _study():
    return SocialWelfareStudy(
        allocators=[
            GreedyFlexibilityAllocator(),
            # Small enough (n=8) that the search always completes, so the
            # result is a pure function of (seed, day) — no anytime cutoff.
            BranchAndBoundAllocator(time_limit_s=60.0),
        ]
    )


def _study_key(records):
    return [
        (r.day, r.n_households, r.allocator, r.par, r.cost, r.proven_optimal,
         r.nodes_explored)
        for r in records
    ]


def _neighborhood(n=10, seed=3):
    generator = ProfileGenerator()
    profiles = generator.sample_population(np.random.default_rng(seed), n)
    return neighborhood_from_profiles(profiles, "wide")


def _outcome_key(outcomes):
    """Everything a DayOutcome decides, minus wall-clock time."""
    return [
        (
            sorted((hid, rep.preference) for hid, rep in o.reports.items()),
            sorted(o.allocation.items()),
            sorted(o.consumption.items()),
            o.settlement.total_cost,
            sorted(o.settlement.payments.items()),
            sorted(o.settlement.utilities.items()),
            o.settlement.neighborhood_utility,
            o.settlement.load_profile.as_array().tolist(),
        )
        for o in outcomes
    ]


class TestSameSeedReproducibility:
    def test_study_same_seed_twice_is_identical(self):
        study = _study()
        first = study.run(8, days=3, seed=SEED)
        second = study.run(8, days=3, seed=SEED)
        assert _study_key(first) == _study_key(second)
        assert all(r.proven_optimal for r in first if r.allocator != "enki-greedy")

    def test_simulation_same_seed_twice_is_identical(self):
        simulation = NeighborhoodSimulation(EnkiMechanism(seed=0))
        neighborhood = _neighborhood()
        first = simulation.run(neighborhood, days=3, seed=SEED)
        second = simulation.run(neighborhood, days=3, seed=SEED)
        assert _outcome_key(first) == _outcome_key(second)

    def test_different_seeds_differ(self):
        study = _study()
        assert _study_key(study.run(8, days=2, seed=1)) != _study_key(
            study.run(8, days=2, seed=2)
        )


class TestParallelBitIdentity:
    def test_study_parallel_matches_serial(self):
        study = _study()
        serial = study.run(8, days=4, seed=SEED, workers=1)
        parallel = study.run(8, days=4, seed=SEED, workers=4)
        assert _study_key(serial) == _study_key(parallel)

    def test_study_sweep_parallel_matches_serial(self):
        study = SocialWelfareStudy(allocators=[GreedyFlexibilityAllocator()])
        serial = study.sweep((6, 10), days=2, seed=SEED, workers=1)
        parallel = study.sweep((6, 10), days=2, seed=SEED, workers=4)
        assert _study_key(serial) == _study_key(parallel)

    def test_simulation_parallel_matches_serial(self):
        simulation = NeighborhoodSimulation(EnkiMechanism(seed=0))
        neighborhood = _neighborhood()
        serial = simulation.run(neighborhood, days=4, seed=SEED, workers=1)
        parallel = simulation.run(neighborhood, days=4, seed=SEED, workers=4)
        assert _outcome_key(serial) == _outcome_key(parallel)

    def test_all_cores_sentinel_matches_serial(self):
        study = SocialWelfareStudy(allocators=[GreedyFlexibilityAllocator()])
        serial = study.run(8, days=3, seed=SEED, workers=1)
        all_cores = study.run(8, days=3, seed=SEED, workers=0)
        assert _study_key(serial) == _study_key(all_cores)


class TestDaySubstreams:
    def test_day_rngs_are_pure_functions_of_seed_and_day(self):
        rng_a, np_a = make_day_rngs(SEED, 5)
        rng_b, np_b = make_day_rngs(SEED, 5)
        assert rng_a.random() == rng_b.random()
        assert np_a.random() == np_b.random()

    def test_day_rngs_differ_across_days(self):
        rng_a, np_a = make_day_rngs(SEED, 0)
        rng_b, np_b = make_day_rngs(SEED, 1)
        assert rng_a.random() != rng_b.random()
        assert np_a.random() != np_b.random()


def _double(x):
    return 2 * x


class TestWorkerPlumbing:
    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(0) == available_cores()
        assert resolve_workers(-1) == available_cores()

    def test_resolve_workers_warns_on_oversubscription(self, caplog):
        cores = available_cores()
        with caplog.at_level("WARNING", logger="repro.sim.parallel"):
            assert resolve_workers(cores + 3) == cores + 3
        assert any(
            "exceeds" in record.getMessage() for record in caplog.records
        ), "oversubscribed workers should log a one-line warning"

    def test_resolve_workers_silent_within_core_count(self, caplog):
        with caplog.at_level("WARNING", logger="repro.sim.parallel"):
            resolve_workers(1)
            resolve_workers(available_cores())
        assert not caplog.records

    def test_map_tasks_preserves_order(self):
        payloads = list(range(12))
        assert map_tasks(_double, payloads, workers=1) == [2 * x for x in payloads]
        assert map_tasks(_double, payloads, workers=3) == [2 * x for x in payloads]

    def test_map_tasks_empty(self):
        assert map_tasks(_double, [], workers=4) == []

    def test_engine_rejects_zero_days(self):
        with pytest.raises(ValueError):
            _study().run(8, days=0, seed=SEED)

    def test_single_visible_core_warns_once(self, caplog, monkeypatch):
        monkeypatch.setattr(parallel_mod, "available_cores", lambda: 1)
        monkeypatch.setattr(parallel_mod, "_single_core_warned", False)
        with caplog.at_level("WARNING", logger="repro.sim.parallel"):
            resolve_workers(4)
            resolve_workers(4)
        single_core = [
            record
            for record in caplog.records
            if "only one core is visible" in record.getMessage()
        ]
        assert len(single_core) == 1, "single-core hint must log exactly once"


def _columnar_neighborhood(n=40, seed=11):
    cols = ProfileGenerator().sample_population_columnar(
        np.random.default_rng(seed), n
    )
    return cols.to_neighborhood("wide")


def _columnar_outcome_key(outcomes):
    """Everything a ColumnarDayOutcome decides, minus wall-clock time."""
    return [
        (
            o.allocation_starts.tolist(),
            o.consumption_starts.tolist(),
            o.kept.tolist(),
            o.settlement.ids,
            o.settlement.total_cost,
            o.settlement.payments.tolist(),
            o.settlement.valuations.tolist(),
        )
        for o in outcomes
    ]


class TestSharedMemoryTransport:
    """The shm day transport must be invisible in the results."""

    def test_shm_matches_pickle_serial(self):
        neighborhood = _columnar_neighborhood()
        simulation = NeighborhoodSimulation(EnkiMechanism(seed=0), columnar=True)
        via_pickle = simulation.run(
            neighborhood, days=3, seed=SEED, workers=1, transport="pickle"
        )
        via_shm = simulation.run(
            neighborhood, days=3, seed=SEED, workers=1, transport="shm"
        )
        assert _columnar_outcome_key(via_pickle) == _columnar_outcome_key(via_shm)

    def test_shm_workers4_bit_identical_and_leak_free(self):
        neighborhood = _columnar_neighborhood()
        simulation = NeighborhoodSimulation(EnkiMechanism(seed=0), columnar=True)
        serial = simulation.run(
            neighborhood, days=4, seed=SEED, workers=1, transport="pickle"
        )
        fanned = simulation.run(
            neighborhood, days=4, seed=SEED, workers=4, transport="shm"
        )
        assert _columnar_outcome_key(serial) == _columnar_outcome_key(fanned)
        assert shm.active_segments() == ()

    def test_auto_transport_uses_shm_for_parallel_columnar(self):
        neighborhood = _columnar_neighborhood(n=20)
        simulation = NeighborhoodSimulation(EnkiMechanism(seed=0), columnar=True)
        serial = simulation.run(neighborhood, days=2, seed=SEED, workers=1)
        fanned = simulation.run(neighborhood, days=2, seed=SEED, workers=2)
        assert _columnar_outcome_key(serial) == _columnar_outcome_key(fanned)
        assert shm.active_segments() == ()

    def test_shm_requires_columnar(self):
        simulation = NeighborhoodSimulation(EnkiMechanism(seed=0))
        with pytest.raises(ValueError, match="columnar"):
            simulation.run(_neighborhood(), days=1, seed=SEED, transport="shm")

    def test_unknown_transport_rejected(self):
        simulation = NeighborhoodSimulation(EnkiMechanism(seed=0), columnar=True)
        with pytest.raises(ValueError, match="transport"):
            simulation.run(
                _columnar_neighborhood(n=10), days=1, seed=SEED, transport="mmap"
            )


class TestSharedArena:
    def test_pack_day_roundtrip_is_zero_copy(self):
        neighborhood = _columnar_neighborhood(n=500)
        with shm.SharedArena() as arena:
            day = arena.pack_day(neighborhood)
            # The descriptor stays tiny no matter the population size.
            assert len(pickle.dumps(day)) < 2_000
            assert len(day) == len(neighborhood)
            rebuilt = day.neighborhood()
            assert rebuilt.ids == neighborhood.ids
            np.testing.assert_array_equal(rebuilt.rating, neighborhood.rating)
            np.testing.assert_array_equal(
                rebuilt.true_start, neighborhood.true_start
            )
            # Reconstruction is cached and its arrays are views, not copies.
            assert day.neighborhood() is rebuilt
            assert not rebuilt.rating.flags.writeable
            assert arena is not None
            assert shm.active_segments() != ()
        assert shm.active_segments() == ()

    def test_dispose_is_idempotent_and_unlinks(self):
        arena = shm.SharedArena()
        day = arena.pack_day(_columnar_neighborhood(n=8))
        name = day.segment
        assert name in shm.active_segments()
        arena.dispose()
        arena.dispose()
        assert name not in shm.active_segments()
        assert not os.path.exists(f"/dev/shm/{name}")

    def test_share_floats_roundtrip(self):
        with shm.SharedArena() as arena:
            name = arena.share_floats(4, float("inf"))
            view = shm.attach_floats(name, 4)
            assert np.all(np.isinf(view))
            view[2] = 7.5
            assert arena.floats(name, 4)[2] == 7.5

    def test_compile_rows_matches_full_compile(self):
        neighborhood = _columnar_neighborhood(n=30)
        with shm.SharedArena() as arena:
            day = arena.pack_day(neighborhood)
            compiled = day.compile_rows(5, 20, None)
            assert compiled.ids == neighborhood.ids[5:20]
            np.testing.assert_array_equal(
                np.asarray(compiled.duration), neighborhood.duration[5:20]
            )
            with pytest.raises(ValueError):
                day.compile_rows(-1, 5, None)
            with pytest.raises(ValueError):
                day.compile_rows(0, len(neighborhood) + 1, None)

    def test_exotic_ids_take_pickle_route(self):
        encoding, _ = shm._encode_ids(("hh0", "hh1"))
        assert encoding == "bytes"
        for ids in ((), ("",), ("hh0", "hh1\x00"), ("hh0", 1)):
            encoding, arr = shm._encode_ids(ids)
            assert encoding == "pickle"
            assert shm._decode_ids(arr, encoding) == tuple(ids)


class TestShardedColumnarDay:
    def test_shards_one_equals_unsharded_day(self):
        neighborhood = _columnar_neighborhood(n=25)
        mechanism = EnkiMechanism(seed=0)
        direct = mechanism.run_day_columnar(neighborhood, rng=random.Random(7))
        sharded = run_columnar_day_sharded(
            mechanism, neighborhood, shards=1, rng=random.Random(7)
        )
        assert _columnar_outcome_key([direct]) == _columnar_outcome_key([sharded])

    def test_worker_count_does_not_change_sharded_day(self):
        neighborhood = _columnar_neighborhood(n=60)
        mechanism = EnkiMechanism(seed=0)
        serial = run_columnar_day_sharded(
            mechanism, neighborhood, shards=3, workers=1, rng=random.Random(7)
        )
        fanned = run_columnar_day_sharded(
            mechanism, neighborhood, shards=3, workers=4, rng=random.Random(7)
        )
        assert _columnar_outcome_key([serial]) == _columnar_outcome_key([fanned])
        assert serial.allocation_result.allocator_name.endswith("+shard3")
        assert shm.active_segments() == ()

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError):
            run_columnar_day_sharded(
                EnkiMechanism(seed=0), _columnar_neighborhood(n=5), shards=0
            )


# ----------------------------------------------------- retry backoff pacing

_PARENT_PID = os.getpid()


def _triples_in_parent_only(value):
    """Hangs forever in pool workers, succeeds inline in the parent."""
    if os.getpid() != _PARENT_PID:
        time.sleep(60.0)
    return value * 3


def _raises_in_children(value):
    """Deterministically fails in pool workers, succeeds in the parent."""
    if os.getpid() != _PARENT_PID:
        raise RuntimeError("child-only fault")
    return value * 3


class TestBackoffDelay:
    def test_zero_jitter_is_bare_exponential(self):
        base = 0.05
        for attempt in range(1, 6):
            expected = base * 2 ** (attempt - 1)
            assert parallel_mod.backoff_delay(attempt, base, jitter=0.0) == expected

    def test_jitter_stretches_within_bounds(self):
        base, jitter = 0.05, 0.5
        for attempt in (1, 2, 3):
            floor = base * 2 ** (attempt - 1)
            draws = [
                parallel_mod.backoff_delay(attempt, base, jitter)
                for _ in range(200)
            ]
            assert all(floor <= d <= floor * (1.0 + jitter) for d in draws)
            # 200 draws from a uniform stretch collapsing to one value
            # would mean the jitter is not actually applied.
            assert len(set(draws)) > 1

    def test_knobs_validated(self):
        with pytest.raises(ValueError):
            parallel_mod.backoff_delay(0)
        with pytest.raises(ValueError):
            parallel_mod.backoff_delay(1, jitter=-0.1)
        with pytest.raises(ValueError):
            map_tasks(_triples_in_parent_only, [1], jitter=-0.1)


class TestStallAndInlineRerun:
    def test_stall_detector_kills_and_recovers_inline(self):
        # Workers hang forever: with the stall detector armed and no
        # retries, the pool is killed and every payload re-runs inline in
        # the parent — the batch still completes with the right values.
        failures = []
        result = map_tasks(
            _triples_in_parent_only,
            [1, 2],
            workers=2,
            timeout_s=0.5,
            retries=0,
            backoff_s=0.0,
            jitter=0.0,
            on_failure=failures.append,
        )
        assert result == [3, 6]
        assert failures and all("stalled" in f.cause for f in failures)

    def test_deterministic_child_failure_reruns_inline(self):
        # A payload that fails on *every* pool attempt exhausts its
        # retries and is recomputed inline — same semantics as serial.
        failures = []
        result = map_tasks(
            _raises_in_children,
            [4, 5],
            workers=2,
            retries=1,
            backoff_s=0.0,
            jitter=0.0,
            on_failure=failures.append,
        )
        assert result == [12, 15]
        assert sorted(f.attempt for f in failures) == [1, 1, 2, 2]
        assert all("child-only fault" in f.cause for f in failures)


class TestArenaAtexitInterplay:
    def test_dispose_after_global_sweep_is_quiet(self):
        # The atexit sweep (_dispose_all_owned) and a later explicit
        # dispose used to double-unlink; both orders must now be no-ops
        # the second time, with no leaked segments either way.
        arena = shm.SharedArena()
        name = arena.pack_day(_columnar_neighborhood(n=6)).segment
        assert name in shm.active_segments()
        shm._dispose_all_owned()
        assert name not in shm.active_segments()
        arena.dispose()  # after the sweep: must not warn or raise
        assert shm.active_segments() == ()

    def test_context_exit_then_sweep_is_quiet(self):
        with shm.SharedArena() as arena:
            name = arena.pack_day(_columnar_neighborhood(n=6)).segment
        assert name not in shm.active_segments()
        shm._dispose_all_owned()  # nothing left to sweep; must be silent
        assert shm.active_segments() == ()
