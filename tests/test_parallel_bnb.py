"""Determinism regressions for the parallel branch-and-bound.

``BranchAndBoundAllocator(workers=k)`` explores disjoint warm-start
subtrees in worker processes against a shared incumbent board.  The
merge is engineered to replay the serial incumbent trajectory exactly
(see ``docs/solver.md`` / ``docs/performance.md``), so on instances the
serial search completes, every observable of the result — cost,
allocation, ``proven_optimal``, ``root_bound_matched`` — must be
bit-identical to ``workers=1``.  ``nodes_explored`` is excluded: the
fan-out legitimately visits a superset of the serial nodes.

Instances reuse the §VI generator so ratings are the paper's uniform
2 kW — the regime where cost quantization makes the bit-identity claim
exact (see the allocator's docstring).
"""

import random

import numpy as np
import pytest

from repro.allocation.base import AllocationProblem
from repro.allocation.optimal import BranchAndBoundAllocator
from repro.core.mechanism import truthful_reports
from repro.pricing.quadratic import QuadraticPricing
from repro.sim import shm
from repro.sim.profiles import ProfileGenerator, neighborhood_from_profiles


def _problem(n, seed):
    generator = ProfileGenerator()
    profiles = generator.sample_population(np.random.default_rng(seed), n)
    neighborhood = neighborhood_from_profiles(profiles, "wide")
    return AllocationProblem.from_reports(
        truthful_reports(neighborhood), neighborhood.households, QuadraticPricing()
    )


def _observables(result):
    return (
        result.cost,
        result.allocation,
        result.proven_optimal,
        result.root_bound_matched,
    )


class TestParallelBnbBitIdentity:
    @pytest.mark.parametrize("seed", [1, 2, 5, 2017])
    @pytest.mark.parametrize("n", [6, 11])
    def test_workers2_matches_serial(self, n, seed):
        problem = _problem(n, seed)
        serial = BranchAndBoundAllocator(time_limit_s=60.0).solve(
            problem, random.Random(0)
        )
        fanned = BranchAndBoundAllocator(time_limit_s=60.0, workers=2).solve(
            problem, random.Random(0)
        )
        assert serial.proven_optimal, "instance sized to complete serially"
        assert _observables(serial) == _observables(fanned)

    def test_workers4_matches_serial(self):
        problem = _problem(13, 7)
        serial = BranchAndBoundAllocator(time_limit_s=60.0).solve(
            problem, random.Random(0)
        )
        fanned = BranchAndBoundAllocator(time_limit_s=60.0, workers=4).solve(
            problem, random.Random(0)
        )
        assert _observables(serial) == _observables(fanned)

    def test_gap_tolerance_matches_serial(self):
        problem = _problem(12, 3)
        serial = BranchAndBoundAllocator(time_limit_s=60.0, gap=0.05).solve(
            problem, random.Random(0)
        )
        fanned = BranchAndBoundAllocator(
            time_limit_s=60.0, gap=0.05, workers=2
        ).solve(problem, random.Random(0))
        assert _observables(serial) == _observables(fanned)

    def test_tiny_instance_matches_serial(self):
        # n=1 collapses to the warm start before any frontier exists.
        problem = _problem(1, 4)
        serial = BranchAndBoundAllocator(time_limit_s=60.0).solve(
            problem, random.Random(0)
        )
        fanned = BranchAndBoundAllocator(time_limit_s=60.0, workers=2).solve(
            problem, random.Random(0)
        )
        assert _observables(serial) == _observables(fanned)

    def test_no_warm_start_falls_back_to_serial(self):
        problem = _problem(8, 6)
        serial = BranchAndBoundAllocator(
            time_limit_s=60.0, warm_start=False
        ).solve(problem, random.Random(0))
        fanned = BranchAndBoundAllocator(
            time_limit_s=60.0, warm_start=False, workers=2
        ).solve(problem, random.Random(0))
        assert _observables(serial) == _observables(fanned)


class TestParallelBnbAnytime:
    def test_node_limited_run_is_feasible_not_proven(self):
        # n=30 at this seed needs far more than 40 nodes to prove.
        problem = _problem(30, 8)
        result = BranchAndBoundAllocator(node_limit=40, workers=2).solve(
            problem, random.Random(0)
        )
        assert problem.is_feasible(result.allocation)
        assert not result.proven_optimal

    def test_fanout_leaks_no_segments(self):
        problem = _problem(12, 9)
        BranchAndBoundAllocator(time_limit_s=60.0, workers=4).solve(
            problem, random.Random(0)
        )
        assert shm.active_segments() == ()
