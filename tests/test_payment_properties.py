"""Tests for the Properties 1-3 verifiers."""

import pytest

from repro.core.mechanism import EnkiMechanism
from repro.theory.payment_properties import (
    check_all_properties,
    check_property_1,
    check_property_2,
    check_property_3,
)


class TestPaymentProperties:
    def test_property_1_holds(self):
        check = check_property_1(EnkiMechanism(), repeats=5, seed=0)
        assert check.holds, (
            f"wider window paid {check.favored_payment:.3f} "
            f"vs narrow {check.disfavored_payment:.3f}"
        )

    def test_property_2_holds(self):
        check = check_property_2(EnkiMechanism(), repeats=5, seed=0)
        assert check.holds, (
            f"off-peak paid {check.favored_payment:.3f} "
            f"vs on-peak {check.disfavored_payment:.3f}"
        )

    def test_property_3_holds(self):
        check = check_property_3(EnkiMechanism(), seed=0)
        assert check.holds
        # Defection is not a marginal effect: Example 4 has B paying ~9x A.
        assert check.disfavored_payment > 2.0 * check.favored_payment

    def test_check_all(self):
        checks = check_all_properties(seed=1)
        assert [c.property_id for c in checks] == [1, 2, 3]
        assert all(c.holds for c in checks)

    @pytest.mark.parametrize("seed", [2, 3, 4])
    def test_properties_stable_across_seeds(self, seed):
        checks = check_all_properties(seed=seed)
        assert all(c.holds for c in checks)
