"""Unit tests for payments (Eq. 7) and budget balance (Theorem 1)."""

import pytest

from repro.core.payments import (
    neighborhood_utility,
    payments,
    proportional_payments,
)


class TestPayments:
    def test_payments_split_scaled_cost(self):
        pay = payments({"A": 1.0, "B": 3.0}, total_cost=100.0, xi=1.2)
        assert sum(pay.values()) == pytest.approx(120.0)
        assert pay["B"] == pytest.approx(3.0 * pay["A"])

    def test_budget_balance_identity(self):
        # Theorem 1: U_c = (xi - 1) * kappa.
        pay = payments({"A": 2.0, "B": 1.0}, total_cost=50.0, xi=1.2)
        assert neighborhood_utility(pay, 50.0) == pytest.approx(0.2 * 50.0)

    def test_xi_one_is_exactly_balanced(self):
        pay = payments({"A": 1.0}, total_cost=80.0, xi=1.0)
        assert neighborhood_utility(pay, 80.0) == pytest.approx(0.0)

    def test_xi_below_one_rejected(self):
        with pytest.raises(ValueError):
            payments({"A": 1.0}, total_cost=10.0, xi=0.99)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            payments({"A": 1.0}, total_cost=-1.0)

    def test_zero_scores_rejected(self):
        with pytest.raises(ValueError):
            payments({"A": 0.0, "B": 0.0}, total_cost=10.0)

    def test_empty_scores_yield_no_payments(self):
        assert payments({}, total_cost=10.0) == {}


class TestProportionalPayments:
    def test_proportional_to_energy(self):
        pay = proportional_payments({"A": 4.0, "B": 8.0}, total_cost=60.0, xi=1.0)
        assert pay["A"] == pytest.approx(20.0)
        assert pay["B"] == pytest.approx(40.0)

    def test_also_budget_balanced(self):
        pay = proportional_payments({"A": 4.0, "B": 8.0}, total_cost=60.0, xi=1.5)
        assert neighborhood_utility(pay, 60.0) == pytest.approx(30.0)

    def test_zero_energy_rejected(self):
        with pytest.raises(ValueError):
            proportional_payments({"A": 0.0}, total_cost=10.0)

    def test_xi_below_one_rejected(self):
        with pytest.raises(ValueError):
            proportional_payments({"A": 1.0}, total_cost=10.0, xi=0.5)
