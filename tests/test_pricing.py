"""Unit tests for the pricing models (Eq. 1 and the piecewise alternative)."""

import pytest

from repro.core.intervals import Interval
from repro.pricing.load_profile import LoadProfile
from repro.pricing.piecewise import TwoStepPricing
from repro.pricing.quadratic import QuadraticPricing, neighborhood_cost


class TestQuadraticPricing:
    def test_hourly_cost(self, pricing):
        assert pricing.hourly_cost(10.0) == pytest.approx(30.0)

    def test_total_cost_eq1(self, pricing):
        profile = LoadProfile()
        profile.add(Interval(18, 20), 2.0)  # two hours at 2 kW
        assert pricing.cost(profile) == pytest.approx(0.3 * (4 + 4))

    def test_negative_load_rejected(self, pricing):
        with pytest.raises(ValueError):
            pricing.hourly_cost(-1.0)

    def test_nonpositive_sigma_rejected(self):
        with pytest.raises(ValueError):
            QuadraticPricing(sigma=0.0)

    def test_strict_convexity_rewards_flattening(self, pricing):
        # Same energy, flatter profile -> strictly lower cost.
        spiky = LoadProfile()
        spiky.add(Interval(18, 19), 4.0)
        flat = LoadProfile()
        flat.add(Interval(18, 20), 2.0)
        assert pricing.cost(flat) < pricing.cost(spiky)

    def test_marginal_block_cost_matches_recompute(self, pricing):
        profile = LoadProfile()
        profile.add(Interval(18, 21), 2.0)
        before = pricing.cost(profile)
        delta = pricing.marginal_block_cost(profile, Interval(19, 22), 2.0)
        profile.add(Interval(19, 22), 2.0)
        assert before + delta == pytest.approx(pricing.cost(profile))

    def test_schedule_cost_helper(self, pricing):
        cost = neighborhood_cost({"A": Interval(18, 20)}, sigma=0.3)
        assert cost == pytest.approx(0.3 * (4 + 4))


class TestTwoStepPricing:
    def test_below_threshold_uses_low_rate(self):
        pricing = TwoStepPricing(threshold_kw=10.0, low_rate=1.0, high_rate=5.0)
        assert pricing.hourly_cost(8.0) == pytest.approx(8.0)

    def test_above_threshold_blends(self):
        pricing = TwoStepPricing(threshold_kw=10.0, low_rate=1.0, high_rate=5.0)
        assert pricing.hourly_cost(12.0) == pytest.approx(10.0 + 2.0 * 5.0)

    def test_convexity_requires_high_at_least_low(self):
        with pytest.raises(ValueError):
            TwoStepPricing(threshold_kw=10.0, low_rate=5.0, high_rate=1.0)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            TwoStepPricing(threshold_kw=-1.0, low_rate=1.0, high_rate=2.0)

    def test_negative_load_rejected(self):
        pricing = TwoStepPricing(threshold_kw=10.0, low_rate=1.0, high_rate=5.0)
        with pytest.raises(ValueError):
            pricing.hourly_cost(-0.1)

    def test_marginal_cost_generic(self):
        pricing = TwoStepPricing(threshold_kw=10.0, low_rate=1.0, high_rate=5.0)
        # Crossing the threshold: 9 -> 11 costs 1*1 + 1*5.
        assert pricing.marginal_cost(9.0, 2.0) == pytest.approx(6.0)
