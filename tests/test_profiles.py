"""Unit tests for the Section VI usage-profile generator."""

import numpy as np
import pytest

from repro.core.intervals import HOURS_PER_DAY, Interval
from repro.core.types import Preference
from repro.sim.profiles import (
    ProfileGenerator,
    ProfileGeneratorConfig,
    UsageProfile,
    neighborhood_from_profiles,
)


class TestUsageProfile:
    def test_wide_must_contain_narrow(self):
        with pytest.raises(ValueError):
            UsageProfile(
                household_id="A",
                narrow=Preference.of(18, 20, 2),
                wide=Preference.of(19, 23, 2),
                valuation_factor=5.0,
            )

    def test_durations_must_match(self):
        with pytest.raises(ValueError):
            UsageProfile(
                household_id="A",
                narrow=Preference.of(18, 20, 2),
                wide=Preference.of(18, 23, 3),
                valuation_factor=5.0,
            )

    def test_as_household_selects_window(self):
        profile = UsageProfile(
            household_id="A",
            narrow=Preference.of(18, 20, 2),
            wide=Preference.of(18, 23, 2),
            valuation_factor=5.0,
        )
        assert profile.as_household("wide").true_preference.end == 23
        assert profile.as_household("narrow").true_preference.end == 20
        with pytest.raises(ValueError):
            profile.as_household("medium")


class TestGeneratorDistributions:
    def test_sample_invariants(self):
        generator = ProfileGenerator()
        rng = np.random.default_rng(0)
        for index in range(300):
            profile = generator.sample(rng, f"hh{index}")
            narrow, wide = profile.narrow, profile.wide
            assert 1 <= profile.duration <= 4
            assert narrow.end == narrow.begin + profile.duration
            # Paper: wide end drawn from [narrow end + 2, 24].
            assert wide.end >= narrow.end + 2
            assert wide.end <= HOURS_PER_DAY
            assert wide.window.contains(narrow.window)
            assert 1.0 <= profile.valuation_factor <= 10.0
            assert profile.rating_kw == 2.0

    def test_begin_times_cluster_near_16(self):
        generator = ProfileGenerator()
        rng = np.random.default_rng(1)
        begins = [generator.sample(rng, f"hh{i}").narrow.begin for i in range(500)]
        mean = sum(begins) / len(begins)
        # Poisson(16) clipped from above: the mean lands just below 16.
        assert 13.0 <= mean <= 16.5

    def test_population_ids_stable_and_unique(self):
        generator = ProfileGenerator()
        rng = np.random.default_rng(2)
        population = generator.sample_population(rng, 12, id_prefix="x")
        ids = [p.household_id for p in population]
        assert len(set(ids)) == 12
        assert ids[0] == "x00"

    def test_population_size_validated(self):
        generator = ProfileGenerator()
        with pytest.raises(ValueError):
            generator.sample_population(np.random.default_rng(0), 0)

    def test_wide_head_slack_variant(self):
        config = ProfileGeneratorConfig(wide_head_slack=3)
        generator = ProfileGenerator(config)
        rng = np.random.default_rng(3)
        saw_earlier_begin = False
        for index in range(200):
            profile = generator.sample(rng, f"hh{index}")
            assert profile.wide.begin <= profile.narrow.begin
            if profile.wide.begin < profile.narrow.begin:
                saw_earlier_begin = True
        assert saw_earlier_begin

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ProfileGeneratorConfig(poisson_mean=0.0)
        with pytest.raises(ValueError):
            ProfileGeneratorConfig(min_duration=3, max_duration=2)
        with pytest.raises(ValueError):
            ProfileGeneratorConfig(min_valuation=0.0)
        with pytest.raises(ValueError):
            ProfileGeneratorConfig(wide_end_gap=-1)


class TestNeighborhoodAssembly:
    def test_wide_truths(self):
        generator = ProfileGenerator()
        profiles = generator.sample_population(np.random.default_rng(4), 5)
        neighborhood = neighborhood_from_profiles(profiles, "wide")
        for profile in profiles:
            assert (
                neighborhood[profile.household_id].true_preference == profile.wide
            )

    def test_narrow_truths(self):
        generator = ProfileGenerator()
        profiles = generator.sample_population(np.random.default_rng(4), 5)
        neighborhood = neighborhood_from_profiles(profiles, "narrow")
        for profile in profiles:
            assert (
                neighborhood[profile.household_id].true_preference == profile.narrow
            )
