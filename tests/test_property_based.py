"""Property-based tests (hypothesis) for core invariants."""

import math
import random

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.allocation.base import AllocationProblem
from repro.allocation.exhaustive import ExhaustiveAllocator
from repro.allocation.greedy import GreedyFlexibilityAllocator
from repro.allocation.optimal import BranchAndBoundAllocator
from repro.allocation.relaxation import quadratic_waterfill_bound, waterfill_levels
from repro.core.intervals import HOURS_PER_DAY, Interval
from repro.core.mechanism import EnkiMechanism, truthful_reports
from repro.core.payments import payments
from repro.core.social_cost import social_cost_scores
from repro.core.types import HouseholdType, Neighborhood, Preference
from repro.core.valuation import valuation
from repro.pricing.quadratic import QuadraticPricing
from repro.stats.mannwhitney import mann_whitney_u


# ---------------------------------------------------------------- strategies

@st.composite
def intervals(draw):
    start = draw(st.integers(min_value=0, max_value=23))
    end = draw(st.integers(min_value=start, max_value=24))
    return Interval(start, end)


@st.composite
def preferences(draw):
    duration = draw(st.integers(min_value=1, max_value=4))
    start = draw(st.integers(min_value=0, max_value=24 - duration))
    end = draw(st.integers(min_value=start + duration, max_value=24))
    return Preference(Interval(start, end), duration)


@st.composite
def neighborhoods(draw, max_size=6):
    size = draw(st.integers(min_value=1, max_value=max_size))
    households = []
    for index in range(size):
        pref = draw(preferences())
        rho = draw(
            st.floats(min_value=1.0, max_value=10.0, allow_nan=False)
        )
        households.append(HouseholdType(f"hh{index}", pref, rho))
    return Neighborhood.of(*households)


# ------------------------------------------------------------------ intervals

class TestIntervalProperties:
    @given(intervals(), intervals())
    def test_overlap_symmetric_and_bounded(self, a, b):
        assert a.overlap(b) == b.overlap(a)
        assert 0 <= a.overlap(b) <= min(a.length, b.length)

    @given(intervals(), intervals())
    def test_overlap_matches_slot_intersection(self, a, b):
        expected = len(set(a.slots()) & set(b.slots()))
        assert a.overlap(b) == expected

    @given(intervals())
    def test_self_overlap_is_length(self, a):
        assert a.overlap(a) == a.length


# ------------------------------------------------------------------ valuation

class TestValuationProperties:
    @given(
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    )
    def test_monotone_and_concave_in_tau(self, duration, rho):
        values = [valuation(float(t), duration, rho) for t in range(duration + 1)]
        assert all(b >= a for a, b in zip(values, values[1:]))
        marginals = [b - a for a, b in zip(values, values[1:])]
        assert all(m2 <= m1 + 1e-12 for m1, m2 in zip(marginals, marginals[1:]))

    @given(
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
    )
    def test_nonnegative_and_capped(self, duration, rho, tau):
        value = valuation(tau, duration, rho)
        assert 0.0 <= value <= rho * duration / 2.0 + 1e-12


# ----------------------------------------------------------- payments/scores

class TestPaymentProperties:
    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c", "d", "e"]),
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            min_size=1,
        ),
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        st.floats(min_value=1.0, max_value=3.0, allow_nan=False),
    )
    def test_budget_balance_always(self, scores, total_cost, xi):
        pay = payments(scores, total_cost, xi)
        assert sum(pay.values()) == pytest.approx(xi * total_cost)
        assert all(value >= 0.0 for value in pay.values())

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_social_cost_scores_positive_and_bounded(self, pairs):
        flexibility = {f"h{i}": f for i, (f, _) in enumerate(pairs)}
        defection = {f"h{i}": d for i, (_, d) in enumerate(pairs)}
        scores = social_cost_scores(flexibility, defection)
        for value in scores.values():
            assert 1.0 / 3.0 - 1e-9 <= value <= 3.0 + 1e-9


# ------------------------------------------------------------------ waterfill

class TestWaterfillProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
            min_size=24,
            max_size=24,
        ),
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    )
    def test_levels_respect_constraints(self, loads, energy):
        loads = np.array(loads)
        caps = np.full(24, 10.0)
        additions = waterfill_levels(loads, energy, caps)
        assert np.all(additions >= -1e-12)
        assert np.all(additions <= caps + 1e-9)
        assert additions.sum() <= energy + 1e-6

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=24,
            max_size=24,
        ),
        st.floats(min_value=0.1, max_value=30.0, allow_nan=False),
    )
    def test_bound_below_uniform_split(self, loads, energy):
        # Any explicit feasible completion costs at least the bound; use
        # the uniform split as one feasible (fractional) completion.
        loads = np.array(loads)
        caps = np.full(24, energy)
        bound = quadratic_waterfill_bound(loads, energy, caps, sigma=0.3)
        uniform = loads + energy / 24.0
        uniform_cost = 0.3 * float(np.dot(uniform, uniform))
        assert bound <= uniform_cost + 1e-6


# ---------------------------------------------------------------- allocation

class TestAllocatorProperties:
    @settings(max_examples=25, deadline=None)
    @given(neighborhoods(max_size=5), st.integers(min_value=0, max_value=2**31))
    def test_greedy_feasible_and_never_beats_exact(self, neighborhood, seed):
        pricing = QuadraticPricing()
        problem = AllocationProblem.from_reports(
            truthful_reports(neighborhood), neighborhood.households, pricing
        )
        assume(problem.search_space_size() <= 20_000)
        greedy = GreedyFlexibilityAllocator().solve(problem, random.Random(seed))
        exact = ExhaustiveAllocator().solve(problem)
        assert problem.is_feasible(greedy.allocation)
        assert exact.cost <= greedy.cost + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(neighborhoods(max_size=5), st.integers(min_value=0, max_value=2**31))
    def test_branch_and_bound_matches_exhaustive(self, neighborhood, seed):
        pricing = QuadraticPricing()
        problem = AllocationProblem.from_reports(
            truthful_reports(neighborhood), neighborhood.households, pricing
        )
        assume(problem.search_space_size() <= 20_000)
        bnb = BranchAndBoundAllocator(seed=0).solve(problem, random.Random(seed))
        exact = ExhaustiveAllocator().solve(problem)
        assert bnb.proven_optimal
        assert bnb.cost == pytest.approx(exact.cost)


# ----------------------------------------------------------------- mechanism

class TestMechanismProperties:
    @settings(max_examples=20, deadline=None)
    @given(neighborhoods(max_size=6), st.integers(min_value=0, max_value=2**31))
    def test_truthful_day_invariants(self, neighborhood, seed):
        mechanism = EnkiMechanism()
        outcome = mechanism.run_day(neighborhood, rng=random.Random(seed))
        settlement = outcome.settlement
        # Theorem 1 identity.
        assert settlement.neighborhood_utility == pytest.approx(
            (mechanism.xi - 1.0) * settlement.total_cost
        )
        # Truthful reports: nobody defects, all defection scores zero.
        for hid in neighborhood.ids():
            assert not outcome.defected(hid)
            assert settlement.defection[hid] == 0.0
            assert settlement.payments[hid] >= 0.0
            # Allocation inside the (true) reported window: tau = v.
            hh = neighborhood[hid]
            assert settlement.valuations[hid] == pytest.approx(
                hh.valuation_factor * hh.duration / 2.0
            )


class TestMechanismUnderDefection:
    @settings(max_examples=15, deadline=None)
    @given(neighborhoods(max_size=5), st.integers(min_value=0, max_value=2**31))
    def test_budget_identity_survives_arbitrary_defection(self, neighborhood, seed):
        """Theorem 1 holds whatever households actually consume."""
        rng = random.Random(seed)
        mechanism = EnkiMechanism()
        reports = truthful_reports(neighborhood)
        allocation = mechanism.allocate(neighborhood, reports, rng).allocation
        # Every household consumes a random placement inside its TRUE window
        # (the only constraint Section III imposes on defection).
        consumption = {}
        for hh in neighborhood:
            window = hh.true_preference.window
            duration = hh.duration
            start = rng.randint(window.start, window.end - duration)
            consumption[hh.household_id] = Interval(start, start + duration)
        settlement = mechanism.settle(neighborhood, reports, allocation, consumption)
        assert sum(settlement.payments.values()) == pytest.approx(
            1.2 * settlement.total_cost
        )
        assert settlement.neighborhood_utility >= -1e-9
        assert all(value > 0 for value in settlement.social_cost.values())
        # Defectors carry zero flexibility, cooperators keep positive scores.
        for hid in neighborhood.ids():
            if consumption[hid] != allocation[hid]:
                assert settlement.flexibility[hid] == 0.0
                assert settlement.defection[hid] >= 0.0
            else:
                assert settlement.flexibility[hid] > 0.0
                assert settlement.defection[hid] == 0.0


# ------------------------------------------------------------- transportation

class TestTransportationProperties:
    @settings(max_examples=20, deadline=None)
    @given(neighborhoods(max_size=4), st.integers(min_value=0, max_value=2**31))
    def test_transportation_bound_below_contiguous_optimum(self, neighborhood, seed):
        from repro.allocation.relaxation import transportation_bound

        pricing = QuadraticPricing()
        problem = AllocationProblem.from_reports(
            truthful_reports(neighborhood), neighborhood.households, pricing
        )
        assume(problem.search_space_size() <= 10_000)
        # The relaxation only applies to uniform ratings (all default 2 kW).
        exact = ExhaustiveAllocator().solve(problem)
        bound = transportation_bound(
            loads=[0.0] * 24,
            windows=[
                list(range(item.window.start, item.window.end))
                for item in problem.items
            ],
            durations=[item.duration for item in problem.items],
            rating=2.0,
            sigma=pricing.sigma,
        )
        assert bound <= exact.cost + 1e-6

    @settings(max_examples=15, deadline=None)
    @given(neighborhoods(max_size=4))
    def test_bound_within_quantum_grid(self, neighborhood):
        from repro.allocation.relaxation import transportation_bound

        pricing = QuadraticPricing()
        problem = AllocationProblem.from_reports(
            truthful_reports(neighborhood), neighborhood.households, pricing
        )
        bound = transportation_bound(
            loads=[0.0] * 24,
            windows=[
                list(range(item.window.start, item.window.end))
                for item in problem.items
            ],
            durations=[item.duration for item in problem.items],
            rating=2.0,
            sigma=pricing.sigma,
        )
        # With uniform ratings the bound is a multiple of the quantum.
        quantum = pricing.sigma * 4.0
        assert bound / quantum == pytest.approx(round(bound / quantum), abs=1e-6)


# ------------------------------------------------------------------ stats

class TestMannWhitneyProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=2,
            max_size=10,
        ),
        st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=2,
            max_size=10,
        ),
    )
    def test_p_value_in_unit_interval_and_u_bounds(self, sample1, sample2):
        result = mann_whitney_u(sample1, sample2)
        assert 0.0 <= result.p_value <= 1.0
        assert 0.0 <= result.u_statistic <= len(sample1) * len(sample2)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=2,
            max_size=8,
        ),
        st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=2,
            max_size=8,
        ),
    )
    def test_one_sided_p_values_cover(self, sample1, sample2):
        less = mann_whitney_u(sample1, sample2, alternative="less")
        greater = mann_whitney_u(sample1, sample2, alternative="greater")
        # The two one-sided tests overlap at the observed statistic, so
        # their sum is at least 1 (exact) or close to it (normal approx).
        assert less.p_value + greater.p_value >= 0.95
