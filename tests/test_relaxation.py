"""Unit tests for the relaxation bounds used by the exact solver."""

import itertools

import numpy as np
import pytest

from repro.allocation.relaxation import (
    quadratic_waterfill_bound,
    transportation_bound,
    transportation_solution,
    uncapacitated_flat_bound,
    waterfill_levels,
)


class TestWaterfillLevels:
    def test_zero_energy_adds_nothing(self):
        loads = np.array([1.0] * 24)
        additions = waterfill_levels(loads, 0.0, np.full(24, 5.0))
        assert additions.sum() == 0.0

    def test_fills_valleys_first(self):
        loads = np.zeros(24)
        loads[0] = 10.0
        additions = waterfill_levels(loads, 5.0, np.full(24, 10.0))
        assert additions[0] == 0.0
        assert additions.sum() == pytest.approx(5.0, rel=1e-6)

    def test_capacity_respected(self):
        loads = np.zeros(24)
        caps = np.zeros(24)
        caps[:2] = 1.0
        additions = waterfill_levels(loads, 2.0, caps)
        assert additions.max() <= 1.0 + 1e-9

    def test_never_places_more_than_energy(self):
        loads = np.linspace(0, 5, 24)
        additions = waterfill_levels(loads, 7.0, np.full(24, 2.0))
        assert additions.sum() <= 7.0 + 1e-9


class TestQuadraticWaterfillBound:
    def test_bound_below_any_feasible_completion(self):
        # One remaining block of 2 hours at 2 kW anywhere in hours 0..3.
        loads = np.zeros(24)
        loads[0] = 2.0
        caps = np.zeros(24)
        caps[0:4] = 2.0
        bound = quadratic_waterfill_bound(loads, 4.0, caps, sigma=0.3)
        # Feasible completions: block at (0,2), (1,3) or (2,4).
        best = min(
            0.3 * sum(l * l for l in profile)
            for profile in (
                [4.0, 2.0, 0.0, 0.0],
                [2.0, 2.0, 2.0, 0.0],
                [2.0, 0.0, 2.0, 2.0],
            )
        )
        assert bound <= best + 1e-9

    def test_flat_bound_weaker_or_equal(self):
        loads = np.zeros(24)
        caps = np.zeros(24)
        caps[0:4] = 2.0
        capped = quadratic_waterfill_bound(loads, 4.0, caps, sigma=0.3)
        flat = uncapacitated_flat_bound(loads, 4.0, sigma=0.3)
        assert flat <= capped + 1e-9


class TestTransportationBound:
    def _brute_force_optimum(self, windows, durations, sigma=0.3, rating=2.0):
        """Exact optimum over contiguous placements (tiny instances)."""
        placements = []
        for hours, duration in zip(windows, durations):
            starts = [
                h for h in hours if all(h + k in hours for k in range(duration))
            ]
            placements.append([range(s, s + duration) for s in starts])
        best = float("inf")
        for combo in itertools.product(*placements):
            loads = [0.0] * 24
            for block in combo:
                for h in block:
                    loads[h] += rating
            best = min(best, sigma * sum(l * l for l in loads))
        return best

    def test_is_lower_bound_on_contiguous_optimum(self):
        windows = [list(range(18, 22)), list(range(18, 21)), list(range(19, 22))]
        durations = [2, 2, 1]
        bound = transportation_bound([0.0] * 24, windows, durations, 2.0, 0.3)
        optimum = self._brute_force_optimum(windows, durations)
        assert bound <= optimum + 1e-9

    def test_tight_when_contiguity_free(self):
        # Disjoint singleton demands: relaxation equals the true optimum.
        windows = [list(range(0, 4)), list(range(10, 14))]
        durations = [1, 1]
        bound = transportation_bound([0.0] * 24, windows, durations, 2.0, 0.3)
        assert bound == pytest.approx(0.3 * (4.0 + 4.0))

    def test_accounts_for_existing_loads(self):
        loads = [0.0] * 24
        loads[18] = 2.0
        windows = [list(range(18, 20))]
        bound = transportation_bound(loads, windows, [1], 2.0, 0.3)
        # Best single brick goes to hour 19: 0.3 * (4 + 4).
        assert bound == pytest.approx(0.3 * 8.0)

    def test_zero_units_returns_base_cost(self):
        loads = [1.0] * 24
        bound = transportation_bound(loads, [], [], 2.0, 0.3)
        assert bound == pytest.approx(0.3 * 24.0)

    def test_solution_assignments_respect_windows(self):
        windows = [list(range(18, 22)), list(range(18, 21))]
        durations = [2, 2]
        bound, assignments = transportation_solution(
            [0.0] * 24, windows, durations, 2.0, 0.3
        )
        for hours, assigned, duration in zip(windows, assignments, durations):
            assert len(assigned) == duration
            assert all(h in hours for h in assigned)
        assert bound > 0.0
