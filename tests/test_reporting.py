"""Tests for the ASCII reporting helpers."""

import pytest

from repro.core.intervals import Interval
from repro.pricing.load_profile import LoadProfile
from repro.reporting.ascii import (
    bar_chart,
    load_profile_chart,
    series_table,
    sparkline,
)


class TestBarChart:
    def test_bars_scale_to_maximum(self):
        chart = bar_chart(["a", "b"], [5.0, 10.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_labels_aligned(self):
        chart = bar_chart(["x", "long"], [1.0, 1.0], width=4)
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_unit_suffix(self):
        chart = bar_chart(["a"], [3.0], unit=" kW")
        assert chart.endswith("3 kW")

    def test_all_zero_values(self):
        chart = bar_chart(["a"], [0.0])
        assert "#" not in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=0)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_zero(self):
        assert sparkline([0.0, 0.0]) == "  "

    def test_monotone_levels(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert line[0] <= line[1] <= line[2]
        assert line[2] == "█"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sparkline([-1.0])


class TestProfileChart:
    def test_covers_requested_hours(self):
        profile = LoadProfile()
        profile.add(Interval(18, 20), 4.0)
        chart = load_profile_chart(profile, hour_range=range(17, 21))
        lines = chart.splitlines()
        assert len(lines) == 4
        assert lines[1].startswith("18:00")
        assert "4 kW" in lines[1]


class TestSeriesTable:
    def test_renders_rows(self):
        table = series_table(
            "peaks", [[1.0, 2.0], [2.0, 1.0]], ["rtp", "enki"]
        )
        lines = table.splitlines()
        assert lines[0] == "peaks"
        assert len(lines) == 3
        assert "peak 2" in lines[1]

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            series_table("x", [[1.0]], ["a", "b"])
