"""Tests for the table renderer and the rng helpers."""

import random

import pytest

from repro.sim.results import fmt, format_table
from repro.sim.rng import make_rngs, spawn_seed


class TestFormatTable:
    def test_alignment_and_rule(self):
        rendered = format_table(["a", "long header"], [(1, "x"), (22, "yy")])
        lines = rendered.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1].replace(" ", "")) == {"-"}
        assert len(lines) == 4

    def test_cells_wider_than_headers(self):
        rendered = format_table(["h"], [("wide-cell-content",)])
        lines = rendered.splitlines()
        assert "wide-cell-content" in lines[2]
        assert len(lines[1]) >= len("wide-cell-content")

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_no_trailing_whitespace(self):
        rendered = format_table(["a", "b"], [(1, 2)])
        for line in rendered.splitlines():
            assert line == line.rstrip()

    def test_empty_rows_renders_header_only(self):
        rendered = format_table(["a"], [])
        assert len(rendered.splitlines()) == 2

    def test_fmt_helper(self):
        assert fmt(1.23456) == "1.235"
        assert fmt(1.2, digits=1) == "1.2"


class TestRngHelpers:
    def test_make_rngs_deterministic(self):
        py1, np1 = make_rngs(42)
        py2, np2 = make_rngs(42)
        assert py1.random() == py2.random()
        assert np1.integers(0, 1000) == np2.integers(0, 1000)

    def test_different_seeds_differ(self):
        py1, _ = make_rngs(1)
        py2, _ = make_rngs(2)
        assert py1.random() != py2.random()

    def test_spawn_seed_stable(self):
        rng = random.Random(7)
        seeds = [spawn_seed(rng) for _ in range(3)]
        rng2 = random.Random(7)
        assert seeds == [spawn_seed(rng2) for _ in range(3)]
        assert len(set(seeds)) == 3
