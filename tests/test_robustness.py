"""Tests for the fault-tolerant mechanism pipeline.

Covers the robustness stack end to end: the error taxonomy, the report
quarantine (with hypothesis properties showing malformed reports never
escape and Theorem 1 survives every policy), the allocator fallback
chain, the hardened parallel runtime, day-level checkpoint/resume, and
the deterministic chaos harness (``-m chaos`` selects the fault-injection
acceptance tests).
"""

import math
import os
import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.allocation.base import AllocationResult, Allocator
from repro.allocation.greedy import GreedyFlexibilityAllocator
from repro.core.intervals import HOURS_PER_DAY, Interval
from repro.core.mechanism import EnkiMechanism
from repro.core.types import Report
from repro.io.audit import AuditLog
from repro.robustness import (
    ChaosInjector,
    ChaosPlan,
    CheckpointError,
    CheckpointStore,
    FallbackAllocator,
    InvalidReportError,
    Quarantine,
    RawReport,
    ReproError,
    SolverBudgetError,
    WorkerFailure,
    day_key,
    exit_code_for,
    plan_faults,
    validate_raw_report,
)
from repro.robustness.errors import InfeasibleAllocationError
from repro.sim.engine import NeighborhoodSimulation, SocialWelfareStudy
from repro.sim.parallel import map_tasks, resolve_workers
from repro.sim.profiles import ProfileGenerator, neighborhood_from_profiles


def small_neighborhood(n=6, seed=0):
    profiles = ProfileGenerator().sample_population(np.random.default_rng(seed), n)
    return neighborhood_from_profiles(profiles, "wide")


def truthful(neighborhood):
    return {
        hh.household_id: Report(hh.household_id, hh.true_preference)
        for hh in neighborhood
    }


def study_key(records):
    """Record identity minus the inherently nondeterministic wall times."""
    return [
        (
            r.day,
            r.n_households,
            r.allocator,
            r.par,
            r.cost,
            r.proven_optimal,
            r.nodes_explored,
            r.served_tier,
        )
        for r in records
    ]


# ------------------------------------------------------------------- errors

class TestErrorTaxonomy:
    def test_distinct_exit_codes(self):
        codes = [
            ReproError.exit_code,
            InvalidReportError.exit_code,
            InfeasibleAllocationError.exit_code,
            SolverBudgetError.exit_code,
            WorkerFailure.exit_code,
            CheckpointError.exit_code,
        ]
        assert len(set(codes)) == len(codes)
        assert all(code >= 10 for code in codes)

    def test_exit_code_for(self):
        assert exit_code_for(InvalidReportError("hh0", "bad-duration")) == (
            InvalidReportError.exit_code
        )
        assert exit_code_for(ValueError("nope")) is None

    def test_invalid_report_carries_structure(self):
        exc = InvalidReportError("hh3", "inverted-window", "[9, 4)")
        assert exc.household_id == "hh3"
        assert exc.reason == "inverted-window"
        assert isinstance(exc, ReproError)


# --------------------------------------------------------------- quarantine

class TestQuarantine:
    def setup_method(self):
        self.neighborhood = small_neighborhood()
        self.reports = truthful(self.neighborhood)
        self.victim = sorted(self.reports)[0]
        self.household = self.neighborhood.households[self.victim]

    def test_clean_reports_pass_every_policy(self):
        for policy in ("reject", "clamp", "exclude"):
            result = Quarantine(policy).screen(self.neighborhood, self.reports)
            assert result.accepted == self.reports
            assert result.n_quarantined == 0

    def test_reject_raises_with_reason(self):
        self.reports[self.victim] = RawReport(
            self.victim, 20, 4, self.household.duration
        )
        with pytest.raises(InvalidReportError) as excinfo:
            Quarantine("reject").screen(self.neighborhood, self.reports)
        assert excinfo.value.reason == "inverted-window"

    def test_clamp_repairs_onto_grid(self):
        self.reports[self.victim] = RawReport(
            self.victim, -7, 90, self.household.duration
        )
        result = Quarantine("clamp").screen(self.neighborhood, self.reports)
        repaired = result.accepted[self.victim]
        window = repaired.preference.window
        assert 0 <= window.start < window.end <= HOURS_PER_DAY
        assert repaired.preference.duration == self.household.duration
        (decision,) = [d for d in result.decisions if d.action != "accepted"]
        assert decision.action == "clamped"
        assert decision.reason == "out-of-grid"
        assert decision.repaired is not None

    def test_clamp_nan_falls_back_to_true_window(self):
        self.reports[self.victim] = RawReport(self.victim, float("nan"), 24, 3)
        result = Quarantine("clamp").screen(self.neighborhood, self.reports)
        repaired = result.accepted[self.victim]
        assert repaired.preference.window == self.household.true_preference.window

    def test_exclude_drops_household(self):
        self.reports[self.victim] = RawReport(self.victim, 3, 9, 999)
        result = Quarantine("exclude").screen(self.neighborhood, self.reports)
        assert self.victim not in result.accepted
        assert result.excluded[self.victim] == "duration-mismatch"

    def test_unknown_household_never_clamped(self):
        self.reports["ghost"] = RawReport("ghost", 0, 24, 3)
        result = Quarantine("clamp").screen(self.neighborhood, self.reports)
        assert "ghost" not in result.accepted
        assert result.excluded["ghost"] == "unknown-household"

    def test_screen_is_idempotent(self):
        self.reports[self.victim] = RawReport(self.victim, 90, -7, 2)
        quarantine = Quarantine("clamp")
        once = quarantine.screen(self.neighborhood, self.reports)
        twice = quarantine.screen(self.neighborhood, once.accepted)
        assert twice.accepted == once.accepted
        assert twice.n_quarantined == 0

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            Quarantine("ignore")

    def test_decision_payload_is_json_safe(self):
        import json

        self.reports[self.victim] = RawReport(self.victim, float("nan"), None, 3)
        result = Quarantine("exclude").screen(self.neighborhood, self.reports)
        for decision in result.decisions:
            json.dumps(decision.as_payload(), allow_nan=False)


#: Arbitrary wire garbage for one field of a raw report.
garbage = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.floats(allow_nan=True, allow_infinity=True),
    st.booleans(),
    st.none(),
    st.text(max_size=5),
)


class TestQuarantineProperties:
    @given(begin=garbage, end=garbage, duration=garbage)
    @settings(max_examples=200, suppress_health_check=[HealthCheck.too_slow])
    def test_malformed_reports_never_escape(self, begin, end, duration):
        """Whatever arrives, everything accepted re-validates cleanly."""
        neighborhood = small_neighborhood(n=3)
        reports = truthful(neighborhood)
        victim = sorted(reports)[0]
        reports[victim] = RawReport(victim, begin, end, duration)
        for policy in ("clamp", "exclude"):
            result = Quarantine(policy).screen(neighborhood, reports)
            for hid, report in result.accepted.items():
                assert isinstance(report, Report)
                # Re-validation never raises: nothing malformed got through.
                validate_raw_report(
                    RawReport.from_report(report), neighborhood.households[hid]
                )
            if policy == "clamp":
                assert set(result.accepted) == set(reports)
        try:
            Quarantine("reject").screen(neighborhood, reports)
        except InvalidReportError as exc:
            assert exc.household_id == victim

    @given(begin=garbage, end=garbage, duration=garbage, policy=st.sampled_from(["clamp", "exclude"]))
    @settings(max_examples=100, suppress_health_check=[HealthCheck.too_slow])
    def test_budget_balance_survives_quarantine(self, begin, end, duration, policy):
        """Theorem 1 over the settled subset, whatever the screen decided."""
        neighborhood = small_neighborhood(n=4, seed=1)
        reports = truthful(neighborhood)
        victim = sorted(reports)[0]
        reports[victim] = RawReport(victim, begin, end, duration)
        mechanism = EnkiMechanism(quarantine=Quarantine(policy), seed=7)
        outcome = mechanism.run_day(neighborhood, reports)
        settlement = outcome.settlement
        assert math.isclose(
            sum(settlement.payments.values()),
            mechanism.xi * settlement.total_cost,
            rel_tol=1e-9,
            abs_tol=1e-9,
        )
        if policy == "exclude":
            assert set(settlement.payments) == set(outcome.allocation)


# ----------------------------------------------------------------- fallback

class RaisingAllocator(Allocator):
    name = "raising"

    def solve(self, problem, rng=None):
        raise RuntimeError("solver exploded")


class InfeasibleAllocator(Allocator):
    name = "infeasible"

    def solve(self, problem, rng=None):
        allocation = {
            item.household_id: Interval(0, item.duration) for item in problem.items
        }
        # Shift one block outside its window if possible to break feasibility.
        item = problem.items[0]
        bad_start = (item.window.start + 1) % HOURS_PER_DAY
        allocation[item.household_id] = Interval(bad_start, bad_start + item.duration + 1) \
            if bad_start + item.duration + 1 <= HOURS_PER_DAY else Interval(0, item.duration + 1)
        return AllocationResult(
            allocation=allocation,
            cost=0.0,
            wall_time_s=0.0,
            allocator_name=self.name,
        )


class TestFallbackAllocator:
    def setup_method(self):
        neighborhood = small_neighborhood(n=5, seed=2)
        from repro.allocation.base import AllocationProblem
        from repro.pricing.quadratic import QuadraticPricing

        self.problem = AllocationProblem.from_reports(
            truthful(neighborhood), neighborhood.households, QuadraticPricing()
        )

    def test_primary_serves_tier_zero(self):
        chain = FallbackAllocator([GreedyFlexibilityAllocator()])
        result = chain.solve(self.problem, random.Random(0))
        assert result.served_tier == 0
        assert result.fallback_trail[-1].status == "served"
        assert self.problem.is_feasible(result.allocation)

    def test_raising_tier_degrades_to_next(self):
        chain = FallbackAllocator([RaisingAllocator(), GreedyFlexibilityAllocator()])
        result = chain.solve(self.problem, random.Random(0))
        assert result.served_tier == 1
        assert [r.status for r in result.fallback_trail] == ["error", "served"]
        assert "solver exploded" in result.fallback_trail[0].detail

    def test_infeasible_tier_is_caught_post_solve(self):
        chain = FallbackAllocator(
            [InfeasibleAllocator(), GreedyFlexibilityAllocator()]
        )
        result = chain.solve(self.problem, random.Random(0))
        assert result.served_tier == 1
        assert result.fallback_trail[0].status == "infeasible"
        assert self.problem.is_feasible(result.allocation)

    def test_all_tiers_failing_raises_budget_error(self):
        chain = FallbackAllocator([RaisingAllocator(), InfeasibleAllocator()])
        with pytest.raises(SolverBudgetError):
            chain.solve(self.problem, random.Random(0))

    def test_budget_clamps_anytime_tiers(self):
        from repro.allocation.optimal import BranchAndBoundAllocator

        chain = FallbackAllocator(
            [BranchAndBoundAllocator(time_limit_s=500.0)], tier_budget_s=0.5
        )
        assert chain.tiers[0].time_limit_s == 0.5

    def test_default_chain_shape(self):
        chain = FallbackAllocator.default_chain(tier_budget_s=1.0, seed=3)
        assert [t.name for t in chain.tiers] == [
            "optimal-bnb",
            "enki-greedy",
            "random",
        ]
        result = chain.solve(self.problem, random.Random(0))
        assert result.served_tier == 0

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            FallbackAllocator([])

    def test_study_records_served_tier(self):
        study = SocialWelfareStudy(
            [FallbackAllocator([RaisingAllocator(), GreedyFlexibilityAllocator()])]
        )
        records = study.run(8, 2, seed=5)
        assert all(r.served_tier == 1 for r in records)


# ------------------------------------------------------------- parallel map

def _flaky_once(task):
    """Fails the first time per marker path, then succeeds (picklable)."""
    marker, value = task
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return value * 2
    os.close(fd)
    raise RuntimeError("transient fault")


def _always_fails(task):
    raise ValueError(f"payload {task} is cursed")


class TestHardenedMapTasks:
    def test_resolve_workers_rejects_below_minus_one(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)
        assert resolve_workers(-1) >= 1

    def test_serial_retry_recovers_transient_fault(self, tmp_path):
        tasks = [(str(tmp_path / f"m{i}"), i) for i in range(4)]
        failures = []
        out = map_tasks(
            _flaky_once, tasks, workers=1, backoff_s=0.0, on_failure=failures.append
        )
        assert out == [0, 2, 4, 6]
        assert len(failures) == 4
        assert all(isinstance(f, WorkerFailure) for f in failures)

    def test_serial_exhausted_retries_reraise(self):
        with pytest.raises(ValueError, match="cursed"):
            map_tasks(_always_fails, [1], workers=1, retries=1, backoff_s=0.0)

    def test_parallel_retry_recovers_transient_fault(self, tmp_path):
        tasks = [(str(tmp_path / f"m{i}"), i) for i in range(6)]
        failures = []
        out = map_tasks(
            _flaky_once, tasks, workers=2, backoff_s=0.0, on_failure=failures.append
        )
        assert out == [0, 2, 4, 6, 8, 10]
        assert failures

    def test_parallel_deterministic_exception_propagates(self):
        with pytest.raises(ValueError, match="cursed"):
            map_tasks(
                _always_fails, [1, 2, 3], workers=2, retries=1, backoff_s=0.0
            )

    def test_on_result_streams_every_payload_once(self, tmp_path):
        tasks = [(str(tmp_path / f"m{i}"), i) for i in range(5)]
        seen = {}
        map_tasks(
            _flaky_once,
            tasks,
            workers=2,
            backoff_s=0.0,
            on_result=lambda i, v: seen.__setitem__(i, v),
        )
        assert seen == {0: 0, 1: 2, 2: 4, 3: 6, 4: 8}

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            map_tasks(_always_fails, [], retries=-1)
        with pytest.raises(ValueError):
            map_tasks(_always_fails, [], chunksize=0)


# --------------------------------------------------------------- checkpoint

class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        store = CheckpointStore(path)
        store.append(day_key(0), {"x": 1})
        store.append(day_key(1, "n20-"), {"x": 2})
        reloaded = CheckpointStore(path)
        assert reloaded.completed() == {"day-0": {"x": 1}, "n20-day-1": {"x": 2}}
        assert "day-0" in reloaded
        assert len(reloaded) == 2

    def test_truncated_tail_is_dropped(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        store = CheckpointStore(path)
        store.append("day-0", {"x": 1})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "day-1", "payl')  # kill mid-write
        reloaded = CheckpointStore(path)
        assert set(reloaded.completed()) == {"day-0"}

    def test_torn_tail_is_physically_truncated(self, tmp_path):
        # Loading past a torn tail must also *repair* the file: a later
        # append lands on a clean line boundary instead of concatenating
        # onto the garbage half-line.
        path = str(tmp_path / "ck.jsonl")
        store = CheckpointStore(path)
        store.append("day-0", {"x": 1})
        clean_size = os.path.getsize(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "day-1", "payl')  # kill mid-append
        resumed = CheckpointStore(path)
        assert set(resumed.completed()) == {"day-0"}
        assert os.path.getsize(path) == clean_size  # tail removed on disk
        resumed.append("day-1", {"x": 2})
        replayed = CheckpointStore(path)
        assert replayed.completed() == {"day-0": {"x": 1}, "day-1": {"x": 2}}

    def test_midfile_corruption_is_not_forgiven(self, tmp_path):
        # A bad line with intact records after it cannot come from a kill
        # mid-append — that is real corruption and must raise, not be
        # silently skipped like a torn tail.
        path = str(tmp_path / "ck.jsonl")
        store = CheckpointStore(path)
        store.append("day-0", {"x": 1})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "day-1", "payl\n')
        CheckpointStore(path).append("day-2", {"x": 3})
        with pytest.raises(CheckpointError, match="not a torn tail"):
            CheckpointStore(path).completed()

    def test_malformed_record_raises(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"not-a-key": 1}\n')
        with pytest.raises(CheckpointError):
            CheckpointStore(path).completed()

    def test_fresh_discards_existing(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        CheckpointStore(path).append("day-0", {})
        assert len(CheckpointStore(path, fresh=True)) == 0

    def test_study_meta_guard_rejects_other_seed(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        study = SocialWelfareStudy([GreedyFlexibilityAllocator()])
        study.run(8, 2, seed=1, checkpoint=CheckpointStore(path, fresh=True))
        with pytest.raises(CheckpointError):
            study.run(8, 2, seed=2, checkpoint=CheckpointStore(path))

    def test_study_resume_replays_wall_times_exactly(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        study = SocialWelfareStudy([GreedyFlexibilityAllocator()])
        first = study.run(8, 3, seed=1, checkpoint=CheckpointStore(path, fresh=True))
        second = study.run(8, 3, seed=1, checkpoint=CheckpointStore(path))
        assert first == second  # wall_time_s included: replay is verbatim

    def test_simulation_resume_matches_uninterrupted(self, tmp_path):
        path = str(tmp_path / "sim.jsonl")
        neighborhood = small_neighborhood(n=6, seed=3)
        sim = NeighborhoodSimulation()
        clean = sim.run(neighborhood, 3, seed=9)
        sim.run(neighborhood, 3, seed=9, checkpoint=CheckpointStore(path, fresh=True))
        resumed = sim.run(neighborhood, 3, seed=9, checkpoint=CheckpointStore(path))
        for a, b in zip(clean, resumed):
            assert a.reports == b.reports
            assert a.allocation == b.allocation
            assert a.consumption == b.consumption
            assert a.settlement.payments == b.settlement.payments
            assert a.settlement.load_profile == b.settlement.load_profile


# -------------------------------------------------------------------- chaos

class TestChaosPlanning:
    def test_plan_is_deterministic_in_root(self):
        a = plan_faults(42, 50, crash_rate=0.3, slow_rate=0.2, malformed_rate=0.3)
        b = plan_faults(42, 50, crash_rate=0.3, slow_rate=0.2, malformed_rate=0.3)
        assert a == b
        c = plan_faults(43, 50, crash_rate=0.3, slow_rate=0.2, malformed_rate=0.3)
        assert a != c

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            plan_faults(1, 5, crash_rate=1.5)

    def test_zero_rates_mean_no_faults(self):
        plan = plan_faults(42, 50)
        assert not plan.crash_days and not plan.slow_days and not plan.malformed_days

    def test_corruption_is_deterministic(self, tmp_path):
        plan = ChaosPlan(root=11, malformed_days=frozenset({0}))
        injector = ChaosInjector(plan, fault_dir=str(tmp_path))
        reports = truthful(small_neighborhood(n=5))
        first = injector.corrupt_reports(0, reports)
        second = injector.corrupt_reports(0, reports)
        assert first == second
        raws = [r for r in first.values() if isinstance(r, RawReport)]
        assert len(raws) == 1

    def test_untouched_day_passes_through(self, tmp_path):
        plan = ChaosPlan(root=11, malformed_days=frozenset({3}))
        injector = ChaosInjector(plan, fault_dir=str(tmp_path))
        reports = truthful(small_neighborhood(n=5))
        assert injector.corrupt_reports(0, reports) == reports

    def test_crash_fuse_fires_once(self, tmp_path):
        plan = ChaosPlan(root=11, crash_days=frozenset({2}))
        injector = ChaosInjector(plan, fault_dir=str(tmp_path))
        with pytest.raises(WorkerFailure):
            injector.before_day(2)
        injector.before_day(2)  # fuse blown: second call is clean

    def test_malformed_chaos_requires_quarantine(self, tmp_path):
        plan = ChaosPlan(root=1, malformed_days=frozenset({0}))
        injector = ChaosInjector(plan, fault_dir=str(tmp_path))
        with pytest.raises(ValueError, match="quarantine"):
            SocialWelfareStudy([GreedyFlexibilityAllocator()], chaos=injector)


@pytest.mark.chaos
class TestChaosAcceptance:
    """The ISSUE's acceptance scenario: injected faults, identical results."""

    DAYS = 8
    N = 10
    SEED = 2024

    def _clean_records(self):
        return SocialWelfareStudy([GreedyFlexibilityAllocator()]).run(
            self.N, self.DAYS, seed=self.SEED
        )

    def _chaos_study(self, tmp_path, kill):
        plan = ChaosPlan(
            root=77,
            crash_days=frozenset({1, 4}),
            malformed_days=frozenset({2, 6}),
        )
        injector = ChaosInjector(plan, fault_dir=str(tmp_path / "faults"), kill=kill)
        study = SocialWelfareStudy(
            [GreedyFlexibilityAllocator()],
            quarantine=Quarantine("clamp"),
            chaos=injector,
        )
        return plan, study

    def test_crashes_and_malformed_reports_recover(self, tmp_path):
        plan, study = self._chaos_study(tmp_path, kill=False)
        audit = AuditLog(str(tmp_path / "audit.jsonl"))
        records = study.run(self.N, self.DAYS, seed=self.SEED, workers=4, audit=audit)
        clean = dict(zip(study_key(self._clean_records()), range(10**6)))
        for key in study_key(records):
            if key[0] not in plan.affected_days:
                assert key in clean
        quarantined = list(audit.events(kind="report_quarantined"))
        assert {e.day for e in quarantined} == set(plan.malformed_days)
        crashes = list(audit.events(kind="worker_failure"))
        assert {e.day for e in crashes} == set(plan.crash_days)
        assert all(e.payload["recovered"] for e in crashes)

    def test_sigkill_broken_pool_recovery(self, tmp_path):
        plan, study = self._chaos_study(tmp_path, kill=True)
        records = study.run(self.N, self.DAYS, seed=self.SEED, workers=4)
        clean = study_key(self._clean_records())
        chaos = study_key(records)
        for clean_key, chaos_key in zip(clean, chaos):
            if clean_key[0] not in plan.affected_days:
                assert clean_key == chaos_key

    def test_kill_then_resume_is_identical(self, tmp_path):
        """--resume after a mid-study crash equals an uninterrupted run."""
        path = str(tmp_path / "ck.jsonl")
        plan = ChaosPlan(root=77, crash_days=frozenset({5}))
        injector = ChaosInjector(plan, fault_dir=str(tmp_path / "faults"))
        study = SocialWelfareStudy(
            [GreedyFlexibilityAllocator()], chaos=injector
        )
        # retries=0 turns the injected crash into a fatal driver error —
        # the moral equivalent of kill -9 halfway through the study.
        with pytest.raises(WorkerFailure):
            study.run(
                self.N,
                self.DAYS,
                seed=self.SEED,
                checkpoint=CheckpointStore(path, fresh=True),
                retries=0,
            )
        partial = CheckpointStore(path)
        assert 0 < len(partial.completed()) < self.DAYS + 1
        resumed = study.run(
            self.N, self.DAYS, seed=self.SEED, checkpoint=CheckpointStore(path)
        )
        assert study_key(resumed) == study_key(self._clean_records())


# ------------------------------------------------------------ CLI exit codes

class TestCliErrorMapping:
    def test_checkpoint_mismatch_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "ck.jsonl")
        base = ["fig4", "--days", "1", "--populations", "10", "--checkpoint", path]
        assert main(base + ["--seed", "1"]) == 0
        capsys.readouterr()
        code = main(base + ["--seed", "2", "--resume"])
        assert code == CheckpointError.exit_code
        err = capsys.readouterr().err
        assert err.count("\n") == 1 and "CheckpointError" in err

    def test_debug_reraises(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "ck.jsonl")
        base = ["fig4", "--days", "1", "--populations", "10", "--checkpoint", path]
        assert main(base + ["--seed", "1"]) == 0
        with pytest.raises(CheckpointError):
            main(base + ["--seed", "2", "--resume", "--debug"])

    def test_resume_requires_checkpoint(self, capsys):
        from repro.cli import main

        assert main(["fig4", "--resume"]) == 2
