"""Tests for the season-scale operational simulator."""

import pytest

from repro.core.mechanism import EnkiMechanism
from repro.sim.season import DAYS_PER_WEEK, SeasonSimulator


class TestSeasonSimulator:
    @pytest.fixture(scope="class")
    def season(self):
        simulator = SeasonSimulator(EnkiMechanism(seed=0), churn_rate=0.2)
        return simulator.run(n_households=8, weeks=3, seed=5)

    def test_weekly_kpis_cover_every_week(self, season):
        assert [week.week for week in season.weeks] == [0, 1, 2]
        assert len(season.outcomes) == 3 * DAYS_PER_WEEK

    def test_population_size_stable_under_churn(self, season):
        # Departures are replaced one-for-one.
        assert all(week.n_households_start == 8 for week in season.weeks)
        assert all(week.joins == week.departures for week in season.weeks)

    def test_budget_balance_every_single_day(self, season):
        assert season.always_budget_balanced

    def test_kpis_in_sane_ranges(self, season):
        for week in season.weeks:
            assert week.mean_cost > 0
            assert 1.0 <= week.mean_par <= 24.0
            assert week.mean_surplus >= 0
            assert 0.0 <= week.defection_rate <= 1.0

    def test_render(self, season):
        rendered = season.render()
        assert "churn" in rendered
        assert rendered.count("\n") == 4  # header + rule + 3 weeks

    def test_churn_actually_rotates_households(self):
        simulator = SeasonSimulator(EnkiMechanism(seed=0), churn_rate=1.0)
        season = simulator.run(n_households=4, weeks=2, seed=1)
        # With 100% churn every household departs after week 0.
        assert season.weeks[0].departures == 4

    def test_zero_churn_keeps_everyone(self):
        simulator = SeasonSimulator(EnkiMechanism(seed=0), churn_rate=0.0)
        season = simulator.run(n_households=4, weeks=2, seed=1)
        assert all(week.departures == 0 for week in season.weeks)

    def test_validation(self):
        with pytest.raises(ValueError):
            SeasonSimulator(churn_rate=1.5)
        simulator = SeasonSimulator()
        with pytest.raises(ValueError):
            simulator.run(n_households=0, weeks=1)
        with pytest.raises(ValueError):
            simulator.run(n_households=2, weeks=0)

    def test_outcomes_can_be_dropped_for_memory(self):
        simulator = SeasonSimulator(EnkiMechanism(seed=0))
        season = simulator.run(
            n_households=4, weeks=1, seed=2, keep_outcomes=False
        )
        assert season.outcomes == []
