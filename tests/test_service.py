"""The supervised shard service: queue, breaker, supervisor, service, city.

Covers the service layer bottom-up — watermark hysteresis on the
ingestion queue, circuit-breaker state transitions on a fake clock,
supervisor retry/deadline/pool-replacement accounting — and then
end-to-end: clean city runs are deterministic, backpressure rejects and
recovers, sick shards settle on the degraded tier (never dropped), and a
journaled service killed mid-run resumes byte-identically.  The chaos
acceptance gate lives in ``TestServiceChaosAcceptance``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.mechanisms.enki import serving_mechanism
from repro.robustness.chaos import ChaosInjector, ChaosPlan, ServiceChaosPlan
from repro.robustness.checkpoint import CheckpointStore
from repro.robustness.errors import (
    CheckpointError,
    ServiceInterrupted,
    ServiceOverloadError,
)
from repro.service import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BoundedIngestQueue,
    CircuitBreaker,
    ShardService,
    ShardSettlementRecord,
    ShardSupervisor,
    sample_shard,
    serve_city,
    shard_sizes,
)

SEED = 1107


# ------------------------------------------------------------------ queue

class TestBoundedIngestQueue:
    def test_accepts_to_capacity_then_rejects(self):
        queue = BoundedIngestQueue(capacity=3)
        for item in range(3):
            queue.submit(item)
        with pytest.raises(ServiceOverloadError) as excinfo:
            queue.submit(99)
        assert excinfo.value.depth == 3
        assert excinfo.value.capacity == 3
        assert excinfo.value.retry_after_s > 0
        assert queue.rejections == 1

    def test_hysteresis_rejects_until_low_watermark(self):
        queue = BoundedIngestQueue(capacity=4, low_watermark=2)
        for item in range(4):
            queue.submit(item)
        with pytest.raises(ServiceOverloadError):
            queue.submit(99)
        # One slot free is not enough: the latch holds above the low
        # watermark, so a saturated queue cannot flap accept/reject.
        queue.pop()
        with pytest.raises(ServiceOverloadError):
            queue.submit(99)
        queue.pop()  # depth 2 == low watermark: re-armed
        queue.submit(99)
        assert queue.depth == 3

    def test_retry_hint_scales_with_backlog(self):
        queue = BoundedIngestQueue(capacity=8, low_watermark=2, retry_after_s=0.1)
        for item in range(8):
            queue.submit(item)
        with pytest.raises(ServiceOverloadError) as excinfo:
            queue.submit(99)
        assert excinfo.value.retry_after_s == pytest.approx(0.1 * 6)

    def test_fifo_order(self):
        queue = BoundedIngestQueue(capacity=3)
        for item in ("a", "b", "c"):
            queue.submit(item)
        assert [queue.pop(), queue.pop(), queue.pop()] == ["a", "b", "c"]

    def test_retry_hint_tracks_observed_drain_rate(self):
        # Once the queue has seen pops, the hint is rate-based: a service
        # draining a shard every 50ms asks a blocked client to wait
        # backlog x 50ms, not backlog x the static fallback.
        clock = _FakeClock()
        queue = BoundedIngestQueue(
            capacity=8, low_watermark=2, retry_after_s=0.1, clock=clock
        )
        for item in range(8):
            queue.submit(item)
        assert queue.drain_interval_s is None  # cold: no rate yet
        for _ in range(4):
            queue.pop()
            clock.now += 0.05
        assert queue.drain_interval_s == pytest.approx(0.05)
        for item in range(4):
            queue.submit(item)
        with pytest.raises(ServiceOverloadError) as excinfo:
            queue.submit(99)
        assert excinfo.value.retry_after_s == pytest.approx(0.05 * 6)

    def test_drain_estimator_is_an_ewma(self):
        from repro.service.queue import DRAIN_EWMA_ALPHA

        clock = _FakeClock()
        queue = BoundedIngestQueue(capacity=8, clock=clock)
        for item in range(3):
            queue.submit(item)
        queue.pop()           # arms the estimator (no interval yet)
        clock.now += 0.1
        queue.pop()           # first interval seeds the average
        assert queue.drain_interval_s == pytest.approx(0.1)
        clock.now += 0.2
        queue.pop()           # newest interval enters at the EWMA weight
        expected = 0.1 + DRAIN_EWMA_ALPHA * (0.2 - 0.1)
        assert queue.drain_interval_s == pytest.approx(expected)

    def test_instant_drains_keep_a_positive_hint(self):
        from repro.service.queue import MIN_RETRY_AFTER_S

        clock = _FakeClock()
        queue = BoundedIngestQueue(capacity=4, clock=clock)
        for item in range(3):
            queue.submit(item)
        for _ in range(3):
            queue.pop()       # zero-interval pops: rate is "infinite"
        assert queue.drain_interval_s == 0.0
        assert queue.retry_hint(100) == MIN_RETRY_AFTER_S

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            BoundedIngestQueue(capacity=0)
        with pytest.raises(ValueError):
            BoundedIngestQueue(capacity=4, low_watermark=5)
        with pytest.raises(ValueError):
            BoundedIngestQueue(capacity=4, retry_after_s=0.0)


# ---------------------------------------------------------------- breaker

class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_stays_closed_below_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=_FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow_primary()

    def test_trips_open_at_threshold(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=_FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow_primary()

    def test_cooldown_admits_single_half_open_probe(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=10.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow_primary()
        clock.now += 10.0
        assert breaker.state == HALF_OPEN
        assert breaker.allow_primary()  # the probe
        assert not breaker.allow_primary()  # blocked while probe in flight

    def test_probe_success_closes(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0, clock=clock)
        breaker.record_failure()
        clock.now += 5.0
        assert breaker.allow_primary()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.failures == 0

    def test_probe_failure_reopens_for_fresh_cooldown(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0, clock=clock)
        breaker.record_failure()
        clock.now += 5.0
        assert breaker.allow_primary()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.now += 4.9
        assert not breaker.allow_primary()
        clock.now += 0.2
        assert breaker.allow_primary()

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=-1.0)


# ----------------------------------------------------------------- record

class TestShardSettlementRecord:
    RECORD = ShardSettlementRecord(
        shard_id=3,
        n_input=100,
        n_settled=97,
        n_quarantined=3,
        served_tier=1,
        allocator_name="fallback",
        degraded="retries exhausted: deadline",
        total_cost=123.5,
        revenue=140.25,
        peak_kw=9.0,
        budget_balanced=True,
        digest="ab" * 32,
        wall_time_s=0.25,
        attempts=3,
    )

    def test_payload_round_trip_is_exact(self):
        clone = ShardSettlementRecord.from_payload(self.RECORD.as_payload())
        assert clone == self.RECORD

    def test_fingerprint_excludes_operational_noise(self):
        slower = self.RECORD.with_attempts(9)
        assert slower.fingerprint() == self.RECORD.fingerprint()
        assert slower != self.RECORD


# ------------------------------------------------------------- supervisor

def _sup_ok(payload):
    return payload * 2


def _sup_cursed(payload):
    raise ValueError(f"payload {payload} is cursed")


def _sup_flaky(payload):
    """Fails once per marker path, then succeeds (transient fault)."""
    marker, value = payload
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return value * 2
    os.close(fd)
    raise RuntimeError("transient fault")


def _sup_sleepy(payload):
    time.sleep(payload)
    return payload


def _drain(supervisor):
    completions = []
    while not supervisor.idle:
        completions.extend(supervisor.step(block=True))
    completions.extend(supervisor.step(block=False))
    return completions


class TestShardSupervisor:
    def test_inline_success(self):
        supervisor = ShardSupervisor(_sup_ok, workers=1)
        supervisor.submit(0, 21)
        (completion,) = supervisor.step(block=False)
        assert completion.ok and completion.value == 42
        assert completion.attempts == 1

    def test_inline_transient_fault_retries(self, tmp_path):
        supervisor = ShardSupervisor(
            _sup_flaky, workers=1, retries=2, backoff_s=0.0
        )
        supervisor.submit(7, (str(tmp_path / "fuse"), 5))
        (completion,) = supervisor.step(block=False)
        assert completion.ok and completion.value == 10
        assert completion.attempts == 2

    def test_inline_exhausted_retries_surface_failure(self):
        supervisor = ShardSupervisor(
            _sup_cursed, workers=1, retries=1, backoff_s=0.0
        )
        supervisor.submit(4, "x")
        (completion,) = supervisor.step(block=False)
        assert not completion.ok
        assert completion.value is None
        assert completion.attempts == 2
        assert "cursed" in completion.cause

    def test_inline_posthoc_deadline_burns_attempts(self):
        supervisor = ShardSupervisor(
            _sup_sleepy, workers=1, deadline_s=0.02, retries=1, backoff_s=0.0
        )
        supervisor.submit(0, 0.08)
        (completion,) = supervisor.step(block=False)
        assert not completion.ok
        assert "deadline" in completion.cause
        assert completion.attempts == 2

    def test_pool_transient_fault_retries(self, tmp_path):
        with ShardSupervisor(
            _sup_flaky, workers=2, retries=2, backoff_s=0.0
        ) as supervisor:
            supervisor.submit(1, (str(tmp_path / "a"), 3))
            supervisor.submit(2, (str(tmp_path / "b"), 4))
            completions = {c.key: c for c in _drain(supervisor)}
        assert completions[1].value == 6
        assert completions[2].value == 8
        assert all(c.attempts == 2 for c in completions.values())

    def test_pool_exhausted_retries_surface_failure(self):
        with ShardSupervisor(
            _sup_cursed, workers=2, retries=1, backoff_s=0.0
        ) as supervisor:
            supervisor.submit(9, "x")
            completions = _drain(supervisor)
        (completion,) = completions
        assert not completion.ok and completion.attempts == 2
        assert "cursed" in completion.cause

    def test_pool_deadline_kills_and_replaces(self):
        with ShardSupervisor(
            _sup_sleepy, workers=2, deadline_s=0.2, retries=0, backoff_s=0.0
        ) as supervisor:
            supervisor.submit(0, 30.0)  # would hang half a minute
            completions = _drain(supervisor)
        (completion,) = completions
        assert not completion.ok
        assert "deadline" in completion.cause
        assert supervisor.pool_replacements >= 1

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            ShardSupervisor(_sup_ok, retries=-1)
        with pytest.raises(ValueError):
            ShardSupervisor(_sup_ok, deadline_s=0.0)


# ---------------------------------------------------------------- service

def _fingerprints(result):
    return {
        index: record.fingerprint() for index, record in result.records.items()
    }


class TestShardService:
    def test_clean_city_settles_every_shard_tier_zero(self):
        result = serve_city(
            n=80, shards=4, workers=1, seed=SEED,
            mechanism=serving_mechanism(seed=SEED),
        )
        assert result.settled == 4
        assert result.n_households == 80
        assert result.degraded == ()
        assert result.all_budget_balanced()
        assert all(r.served_tier == 0 for r in result.records.values())
        assert all(r.n_quarantined == 0 for r in result.records.values())

    def test_city_is_deterministic_across_runs(self):
        kwargs = dict(
            n=60, shards=3, workers=1, seed=SEED,
            mechanism=serving_mechanism(seed=SEED),
        )
        assert _fingerprints(serve_city(**kwargs)) == _fingerprints(
            serve_city(**kwargs)
        )

    def test_backpressure_rejects_then_recovers(self):
        # Queue smaller than the shard count: ingestion must hit the high
        # watermark, push back, and still settle everything.
        result = serve_city(
            n=60, shards=6, workers=1, seed=SEED,
            mechanism=serving_mechanism(seed=SEED),
            queue_capacity=2, low_watermark=1,
        )
        assert result.settled == 6
        assert result.overload_rejections > 0
        assert result.all_budget_balanced()

    def test_overload_error_carries_retry_after(self):
        neighborhood, seed = sample_shard(SEED, 0, 10)
        with ShardService(
            mechanism=serving_mechanism(seed=SEED), queue_capacity=1
        ) as service:
            service.submit_shard(0, neighborhood, seed=seed)
            other, other_seed = sample_shard(SEED, 1, 10)
            with pytest.raises(ServiceOverloadError) as excinfo:
                service.submit_shard(1, other, seed=other_seed)
            assert excinfo.value.retry_after_s > 0
            # The rejected shard was not accepted anywhere.
            assert service.pending == 1

    def test_poisoned_shard_settles_degraded_never_dropped(self, tmp_path):
        # Strict primary (no quarantine) + NaN reports: every primary
        # attempt raises, the breaker trips, and the shard must still
        # settle — on the degraded clamp+fallback tier.
        neighborhood, seed = sample_shard(SEED, 0, 12)
        begin = neighborhood.true_start.astype(float)
        begin[::3] = float("nan")
        with ShardService(
            mechanism=serving_mechanism(seed=SEED, quarantine_policy=None),
            workers=1, retries=1, backoff_s=0.0,
        ) as service:
            service.submit_shard(
                0, neighborhood, begin=begin, seed=seed
            )
            record = service.drain().records[0]
        assert record.served_tier >= 1
        assert record.degraded.startswith("retries exhausted")
        assert record.n_settled == record.n_input  # clamp repaired, not dropped
        assert record.budget_balanced
        assert record.attempts == 3  # two primary attempts + degraded

    def test_open_breaker_routes_straight_to_degraded(self):
        clock = _FakeClock()
        neighborhood, seed = sample_shard(SEED, 0, 10)
        with ShardService(
            mechanism=serving_mechanism(seed=SEED),
            workers=1, failure_threshold=1, clock=clock,
        ) as service:
            # Trip shard 0's breaker before it is ever dispatched.
            service._breaker(0).record_failure()
            service.submit_shard(0, neighborhood, seed=seed)
            record = service.drain().records[0]
        assert record.served_tier >= 1
        assert "circuit-breaker open" in record.degraded

    def test_journal_resume_replays_byte_identically(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        kwargs = dict(
            n=40, shards=4, workers=1, seed=SEED,
            mechanism=serving_mechanism(seed=SEED),
        )
        first = serve_city(
            journal=CheckpointStore(path, fresh=True), **kwargs
        )
        resumed = serve_city(journal=CheckpointStore(path), **kwargs)
        assert resumed.replayed == (0, 1, 2, 3)
        # Replay is verbatim: wall times and attempts included.
        assert resumed.records == first.records

    def test_journal_meta_guard_rejects_other_city(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        serve_city(
            n=20, shards=2, workers=1, seed=SEED,
            mechanism=serving_mechanism(seed=SEED),
            journal=CheckpointStore(path, fresh=True),
        )
        with pytest.raises(CheckpointError):
            serve_city(
                n=20, shards=2, workers=1, seed=SEED + 1,
                mechanism=serving_mechanism(seed=SEED + 1),
                journal=CheckpointStore(path),
            )

    def test_duplicate_shard_rejected(self):
        neighborhood, seed = sample_shard(SEED, 0, 10)
        with ShardService(mechanism=serving_mechanism(seed=SEED)) as service:
            service.submit_shard(0, neighborhood, seed=seed)
            with pytest.raises(ValueError, match="already submitted"):
                service.submit_shard(0, neighborhood, seed=seed)

    def test_audit_trail_records_settlements(self, tmp_path):
        from repro.io.audit import AuditLog

        path = str(tmp_path / "audit.jsonl")
        serve_city(
            n=20, shards=2, workers=1, seed=SEED,
            mechanism=serving_mechanism(seed=SEED),
            audit=AuditLog(path),
        )
        kinds = [event.kind for event in AuditLog(path).events()]
        assert kinds.count("shard_settled") == 2


class TestCityHelpers:
    def test_shard_sizes_cover_exactly(self):
        assert sum(shard_sizes(1_000_003, 17)) == 1_000_003
        assert shard_sizes(10, 3) == [3, 3, 4]
        assert shard_sizes(2, 8) == [1, 1]  # never more shards than rows

    def test_shard_sizes_validated(self):
        with pytest.raises(ValueError):
            shard_sizes(0, 4)
        with pytest.raises(ValueError):
            shard_sizes(10, 0)

    def test_sample_shard_is_pure_in_root_and_index(self):
        a_nbhd, a_seed = sample_shard(7, 3, 25)
        b_nbhd, b_seed = sample_shard(7, 3, 25)
        assert a_seed == b_seed
        assert a_nbhd.ids == b_nbhd.ids
        assert np.array_equal(a_nbhd.true_start, b_nbhd.true_start)
        assert np.array_equal(a_nbhd.valuation, b_nbhd.valuation)
        c_nbhd, c_seed = sample_shard(7, 4, 25)
        assert c_seed != a_seed
        assert c_nbhd.ids != a_nbhd.ids


class TestCityCli:
    def test_city_subcommand_smoke(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "city.jsonl")
        argv = [
            "city", "--n", "40", "--shards", "2", "--seed", str(SEED),
            "--checkpoint", path,
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "shards settled" in out and "2" in out
        assert "budget balanced (Thm 1)" in out and "yes" in out

        # Resuming replays both shards from the journal.
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "replayed from journal" in out

    def test_city_journal_mismatch_maps_to_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "city.jsonl")
        base = ["city", "--n", "40", "--shards", "2", "--checkpoint", path]
        assert main(base + ["--seed", "1"]) == 0
        capsys.readouterr()
        assert main(base + ["--seed", "2", "--resume"]) == CheckpointError.exit_code


# ----------------------------------------------------- chaos acceptance

@pytest.mark.chaos
class TestServiceChaosAcceptance:
    """The acceptance gate: SIGKILLs, stalls and floods lose nothing.

    One explicit fault plan — a slow shard, a SIGKILL shard, a
    malformed-flood shard — driven through a parallel service with a
    tight deadline and a supervisor-kill fuse.  Every shard must settle
    (degraded tiers recorded, never dropped), Theorem 1 must hold on
    every settled day, and the killed-then-resumed service must
    reproduce the uninterrupted run's settlement records byte-for-byte
    (digest fingerprints).
    """

    SHARDS = 5
    N = 50

    def _plan(self, kill_after):
        return ServiceChaosPlan(
            root=SEED,
            slow_shards=frozenset({1}),
            kill_shards=frozenset({2}),
            flood_shards=frozenset({3}),
            kill_after=kill_after,
        )

    def _run(self, tmp_path, tag, kill_after, journal):
        injector = ChaosInjector(
            plan=ChaosPlan(root=SEED),
            fault_dir=str(tmp_path / f"faults-{tag}"),
            kill=True,
            slow_s=1.2,
            service_plan=self._plan(kill_after),
        )
        return serve_city(
            n=self.N, shards=self.SHARDS, workers=2, seed=SEED,
            mechanism=serving_mechanism(seed=SEED, quarantine_policy=None),
            deadline_s=0.5, retries=2, backoff_s=0.05, jitter=0.0,
            journal=journal, chaos=injector,
        )

    @staticmethod
    def _digests(result):
        return {
            index: record.digest for index, record in result.records.items()
        }

    def test_chaos_run_loses_nothing_and_resumes_identically(self, tmp_path):
        # Reference: same faults, no supervisor kill, its own fuse dir.
        reference = self._run(
            tmp_path, "ref", kill_after=None,
            journal=CheckpointStore(str(tmp_path / "ref.jsonl"), fresh=True),
        )
        assert reference.settled == self.SHARDS

        # The flood shard's corruption was repaired, never silently
        # dropped: settled + quarantined == input, budget still balanced.
        flood = reference.records[3]
        assert flood.n_settled + flood.n_quarantined == flood.n_input
        assert flood.n_settled > 0
        assert flood.budget_balanced

        # The supervised run dies after two settlements...
        path = str(tmp_path / "journal.jsonl")
        with pytest.raises(ServiceInterrupted):
            self._run(
                tmp_path, "chaos", kill_after=2,
                journal=CheckpointStore(path, fresh=True),
            )
        survivors = CheckpointStore(path).completed()
        assert len([k for k in survivors if k.startswith("shard-")]) >= 2

        # ...and the resumed service finishes the city.
        resumed = self._run(
            tmp_path, "chaos", kill_after=2, journal=CheckpointStore(path)
        )
        assert resumed.settled == self.SHARDS
        assert resumed.replayed  # at least the pre-kill settlements

        # Zero lost days; Theorem 1 on every settled shard.
        assert sorted(resumed.records) == list(range(self.SHARDS))
        assert resumed.all_budget_balanced()
        assert reference.all_budget_balanced()

        # The slow shard exhausted its deadline and settled degraded; the
        # flood shard's malformed reports drove it off the strict primary;
        # the SIGKILLed shard recovered onto tier 0 via its one-shot fuse.
        assert resumed.records[1].served_tier >= 1
        assert resumed.records[3].served_tier >= 1
        assert resumed.records[2].served_tier == 0
        assert resumed.pool_replacements + reference.pool_replacements > 0

        # Byte-identical settlement (allocation, consumption, payments):
        # interrupted + resumed == uninterrupted, shard for shard.
        assert self._digests(resumed) == self._digests(reference)


class TestStreamedFlood:
    """Chaos flood corruption applied mid-stream, chunk by chunk.

    The flood shard's corrupted rows must land in the quarantine (counted,
    repaired-or-excluded, never silently settled), the settlement record
    must carry its served tier, the audit trail must show the streamed
    shard completing with its suspect count — and the whole streamed chaos
    run must be digest-identical to the batch run whose corruption was
    applied in one whole-shard pass.
    """

    def _injector(self, tmp_path, tag):
        return ChaosInjector(
            plan=ChaosPlan(root=SEED),
            fault_dir=str(tmp_path / f"faults-{tag}"),
            service_plan=ServiceChaosPlan(
                root=SEED, flood_shards=frozenset({1})
            ),
        )

    def _run(self, tmp_path, tag, audit, stream):
        # "exclude" keeps the quarantine's rejections visible in
        # n_quarantined (clamp would repair them invisibly).
        return serve_city(
            n=90, shards=3, workers=1, seed=SEED,
            mechanism=serving_mechanism(seed=SEED, quarantine_policy="exclude"),
            audit=audit, chaos=self._injector(tmp_path, tag),
            stream=stream, stream_chunk=11,
        )

    def test_mid_stream_corruption_lands_in_quarantine(self, tmp_path):
        from repro.io.audit import AuditLog

        audit_path = str(tmp_path / "stream-audit.jsonl")
        streamed = self._run(
            tmp_path, "stream", AuditLog(audit_path), stream=True
        )
        assert streamed.settled == 3

        flood = streamed.records[1]
        assert flood.n_quarantined > 0  # corrupted rows were caught...
        assert flood.n_settled + flood.n_quarantined == flood.n_input
        assert flood.served_tier == 0   # ...on the primary tier, intact
        assert flood.budget_balanced
        clean = streamed.records[0]
        assert clean.n_quarantined == 0  # corruption never leaks shards

        log = AuditLog(audit_path)
        completions = {
            event.day: event.payload
            for event in log.events("stream_shard_complete")
        }
        assert set(completions) == {0, 1, 2}
        assert completions[1]["suspect_rows"] > 0  # flagged at flush time
        assert completions[0]["suspect_rows"] == 0
        settled_days = [event.day for event in log.events("shard_settled")]
        assert sorted(settled_days) == [0, 1, 2]

        # Same fault plan, whole-shard corruption: identical settlement.
        batch = self._run(tmp_path, "batch", None, stream=False)
        assert {i: r.digest for i, r in streamed.records.items()} == {
            i: r.digest for i, r in batch.records.items()
        }
