"""Unit tests for social-cost scores (Eq. 6) and their normalization."""

import pytest

from repro.core.social_cost import normalized_shares, social_cost_scores


class TestNormalizedShares:
    def test_shares_shift_into_half_to_three_halves(self):
        shares = normalized_shares({"A": 1.0, "B": 3.0})
        assert shares["A"] == pytest.approx(0.75)
        assert shares["B"] == pytest.approx(1.25)
        assert all(0.5 <= value <= 1.5 for value in shares.values())

    def test_all_zero_scores_fall_back_to_neutral(self):
        shares = normalized_shares({"A": 0.0, "B": 0.0})
        assert shares == {"A": 0.5, "B": 0.5}

    def test_single_household_gets_full_share(self):
        assert normalized_shares({"A": 2.0}) == {"A": 1.5}


class TestSocialCostScores:
    def test_equal_households_equal_scores(self):
        scores = social_cost_scores(
            flexibility={"A": 1.0, "B": 1.0},
            defection={"A": 0.0, "B": 0.0},
        )
        assert scores["A"] == pytest.approx(scores["B"])

    def test_flexible_household_scores_lower(self):
        scores = social_cost_scores(
            flexibility={"A": 2.0, "B": 1.0},
            defection={"A": 0.0, "B": 0.0},
        )
        assert scores["A"] < scores["B"]

    def test_defector_scores_higher(self):
        scores = social_cost_scores(
            flexibility={"A": 1.0, "B": 0.0},
            defection={"A": 0.0, "B": 2.0},
        )
        assert scores["B"] > scores["A"]

    def test_k_scales_linearly(self):
        base = social_cost_scores({"A": 1.0, "B": 2.0}, {"A": 0.0, "B": 1.0}, k=1.0)
        doubled = social_cost_scores({"A": 1.0, "B": 2.0}, {"A": 0.0, "B": 1.0}, k=2.0)
        for hid in base:
            assert doubled[hid] == pytest.approx(2.0 * base[hid])

    def test_scores_always_positive(self):
        scores = social_cost_scores(
            flexibility={"A": 0.0, "B": 5.0, "C": 1.0},
            defection={"A": 9.0, "B": 0.0, "C": 0.0},
        )
        assert all(value > 0 for value in scores.values())

    def test_bounded_ratio(self):
        # Both normalized terms live in [0.5, 1.5], so Psi/k is in [1/3, 3].
        scores = social_cost_scores(
            flexibility={"A": 0.0, "B": 100.0},
            defection={"A": 100.0, "B": 0.0},
        )
        for value in scores.values():
            assert 1.0 / 3.0 - 1e-12 <= value <= 3.0 + 1e-12


class TestValidation:
    def test_mismatched_households_rejected(self):
        with pytest.raises(ValueError):
            social_cost_scores({"A": 1.0}, {"B": 0.0})

    def test_negative_scores_rejected(self):
        with pytest.raises(ValueError):
            social_cost_scores({"A": -1.0}, {"A": 0.0})
        with pytest.raises(ValueError):
            social_cost_scores({"A": 1.0}, {"A": -0.5})

    def test_nonpositive_k_rejected(self):
        with pytest.raises(ValueError):
            social_cost_scores({"A": 1.0}, {"A": 0.0}, k=0.0)
