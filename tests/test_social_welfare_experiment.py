"""Unit tests for the shared social-welfare driver and its extractors."""

import pytest

from repro.experiments.social_welfare import (
    ENKI,
    OPTIMAL,
    SocialWelfareResult,
    run_social_welfare_study,
)
from repro.experiments import fig4_par, fig5_cost, fig6_time


@pytest.fixture(scope="module")
def tiny_run():
    return run_social_welfare_study(
        populations=(5,), days=2, seed=9, optimal_time_limit_s=5.0
    )


class TestDriver:
    def test_records_shape(self, tiny_run):
        assert len(tiny_run.records) == 2 * 2  # 2 allocators x 2 days
        assert {r.allocator for r in tiny_run.records} == {ENKI, OPTIMAL}

    def test_series_accessor(self, tiny_run):
        enki_series = tiny_run.series(ENKI)
        assert len(enki_series) == 1
        assert enki_series[0].n_households == 5

    def test_optimal_never_costs_more(self, tiny_run):
        by_day = {}
        for record in tiny_run.records:
            by_day.setdefault(record.day, {})[record.allocator] = record
        for day, cell in by_day.items():
            assert cell[OPTIMAL].cost <= cell[ENKI].cost + 1e-9


class TestExtractors:
    def test_fig4_gap_definition(self, tiny_run):
        row = fig4_par.extract(tiny_run).rows[0]
        assert row.gap == pytest.approx(row.enki_par - row.optimal_par)

    def test_fig5_excess_definition(self, tiny_run):
        row = fig5_cost.extract(tiny_run).rows[0]
        expected = (row.enki_cost - row.optimal_cost) / row.optimal_cost
        assert row.relative_excess == pytest.approx(expected)

    def test_fig6_slowdown_definition(self, tiny_run):
        row = fig6_time.extract(tiny_run).rows[0]
        assert row.slowdown == pytest.approx(row.optimal_ms / row.enki_ms)

    def test_renders_nonempty(self, tiny_run):
        for module in (fig4_par, fig5_cost, fig6_time):
            assert module.extract(tiny_run).render()
