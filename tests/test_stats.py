"""Unit tests for the statistics substrate (Mann-Whitney U, CIs)."""

import math
import random

import pytest
import scipy.stats as sps

from repro.stats.descriptive import MeanCI, mean_ci, sample_mean, sample_std
from repro.stats.mannwhitney import mann_whitney_u, u_statistic


class TestDescriptive:
    def test_mean_ci_basic(self):
        ci = mean_ci([1.0, 2.0, 3.0])
        assert ci.mean == pytest.approx(2.0)
        assert ci.low < 2.0 < ci.high
        assert ci.n == 3

    def test_single_value_has_zero_width(self):
        ci = mean_ci([5.0])
        assert ci.half_width == 0.0

    def test_matches_scipy_t_interval(self):
        values = [3.1, 2.7, 4.2, 3.8, 2.9]
        ci = mean_ci(values)
        low, high = sps.t.interval(
            0.95, df=len(values) - 1, loc=ci.mean, scale=sps.sem(values)
        )
        assert ci.low == pytest.approx(low)
        assert ci.high == pytest.approx(high)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([])
        with pytest.raises(ValueError):
            sample_mean([])
        with pytest.raises(ValueError):
            sample_std([1.0])

    def test_invalid_confidence_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([1.0, 2.0], confidence=1.0)

    def test_sample_std(self):
        assert sample_std([1.0, 3.0]) == pytest.approx(math.sqrt(2.0))


class TestUStatistic:
    def test_complete_separation(self):
        # All of sample 1 above sample 2: U = n1 * n2.
        assert u_statistic([10, 11, 12], [1, 2]) == 6.0

    def test_complete_reversal(self):
        assert u_statistic([1, 2], [10, 11, 12]) == 0.0

    def test_symmetry_identity(self):
        u1 = u_statistic([1, 5, 7], [2, 3])
        u2 = u_statistic([2, 3], [1, 5, 7])
        assert u1 + u2 == 3 * 2

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            u_statistic([], [1])


class TestMannWhitneyAgainstScipy:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("alternative", ["two-sided", "less", "greater"])
    def test_exact_small_samples_match_scipy(self, seed, alternative):
        rng = random.Random(seed)
        sample1 = [rng.random() for _ in range(8)]
        sample2 = [rng.random() for _ in range(9)]
        ours = mann_whitney_u(sample1, sample2, alternative=alternative)
        theirs = sps.mannwhitneyu(
            sample1, sample2, alternative=alternative, method="exact"
        )
        assert ours.method == "exact"
        assert ours.u_statistic == pytest.approx(theirs.statistic)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-9)

    @pytest.mark.parametrize("seed", [10, 11])
    def test_normal_approximation_close_to_scipy(self, seed):
        rng = random.Random(seed)
        sample1 = [rng.gauss(0, 1) for _ in range(30)]
        sample2 = [rng.gauss(0.5, 1) for _ in range(28)]
        ours = mann_whitney_u(sample1, sample2)
        theirs = sps.mannwhitneyu(sample1, sample2, alternative="two-sided")
        assert ours.method == "normal"
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6)

    def test_ties_use_corrected_normal(self):
        sample1 = [1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7]
        sample2 = [2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8]
        ours = mann_whitney_u(sample1, sample2)
        theirs = sps.mannwhitneyu(sample1, sample2, alternative="two-sided")
        assert ours.method == "normal"
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6)

    def test_identical_samples_pvalue_one(self):
        result = mann_whitney_u([3.0] * 30, [3.0] * 30)
        assert result.p_value == 1.0

    def test_table3_style_constant_sample2(self):
        # Sample 2 constant (stage_rounds / 2), like the paper's Table III.
        defects = [0, 1, 2, 0, 3, 1, 0, 2, 1, 0, 4, 1, 0, 2, 1, 3, 0, 1, 2, 0]
        baseline = [8.0] * 20
        result = mann_whitney_u(defects, baseline)
        assert result.p_value < 0.0001

    def test_invalid_alternative_rejected(self):
        with pytest.raises(ValueError):
            mann_whitney_u([1], [2], alternative="sideways")

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            mann_whitney_u([], [1])
