"""Tests for the Wilcoxon signed-rank test and bootstrap CIs."""

import random

import pytest
import scipy.stats as sps

from repro.stats.bootstrap import bootstrap_ci
from repro.stats.wilcoxon import wilcoxon_signed_rank


class TestWilcoxonAgainstScipy:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("alternative", ["two-sided", "less", "greater"])
    def test_exact_matches_scipy(self, seed, alternative):
        rng = random.Random(seed)
        sample1 = [rng.random() for _ in range(10)]
        sample2 = [rng.random() for _ in range(10)]
        ours = wilcoxon_signed_rank(sample1, sample2, alternative=alternative)
        theirs = sps.wilcoxon(
            sample1, sample2, alternative=alternative, mode="exact"
        )
        assert ours.method == "exact"
        # scipy reports min(W+, W-) for two-sided; compare p-values only.
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-9)

    @pytest.mark.parametrize("seed", [5, 6])
    def test_normal_close_to_scipy(self, seed):
        rng = random.Random(seed)
        sample1 = [rng.gauss(0, 1) for _ in range(40)]
        sample2 = [rng.gauss(0.3, 1) for _ in range(40)]
        ours = wilcoxon_signed_rank(sample1, sample2)
        theirs = sps.wilcoxon(
            sample1, sample2, alternative="two-sided", mode="approx",
            correction=True,
        )
        assert ours.method == "normal"
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=0.05)

    def test_identical_pairs_degenerate(self):
        result = wilcoxon_signed_rank([1.0, 2.0], [1.0, 2.0])
        assert result.p_value == 1.0
        assert result.n_pairs_used == 0

    def test_clear_difference_significant(self):
        sample1 = [float(i) for i in range(12)]
        sample2 = [value + 5.0 for value in sample1]
        result = wilcoxon_signed_rank(sample1, sample2, alternative="less")
        assert result.p_value < 0.01

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([1.0], [1.0, 2.0])

    def test_unknown_alternative_rejected(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank([1.0], [2.0], alternative="diagonal")

    def test_paired_fig8_style_analysis(self):
        # The Figure 8 data are paired; the signed-rank companion should
        # also find the Initial < Cooperate effect on synthetic data with
        # a clear shift.
        rng = random.Random(9)
        initial = [rng.uniform(0.0, 0.5) for _ in range(16)]
        cooperate = [min(1.0, value + rng.uniform(0.1, 0.4)) for value in initial]
        result = wilcoxon_signed_rank(initial, cooperate, alternative="less")
        assert result.p_value < 0.01


class TestBootstrap:
    def test_interval_contains_mean_of_stable_sample(self):
        values = [10.0 + (i % 3) for i in range(30)]
        ci = bootstrap_ci(values, seed=0)
        assert ci.low <= ci.estimate <= ci.high
        assert ci.contains(11.0)

    def test_custom_statistic(self):
        values = [1.0, 2.0, 3.0, 100.0]
        ci = bootstrap_ci(values, statistic=lambda s: sorted(s)[len(s) // 2], seed=1)
        assert ci.low <= ci.estimate <= ci.high

    def test_narrows_with_larger_samples(self):
        rng = random.Random(2)
        small = [rng.gauss(0, 1) for _ in range(10)]
        large = [rng.gauss(0, 1) for _ in range(1000)]
        ci_small = bootstrap_ci(small, seed=3)
        ci_large = bootstrap_ci(large, seed=3)
        assert (ci_large.high - ci_large.low) < (ci_small.high - ci_small.low)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], resamples=0)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.0)
