"""Streaming report ingestion: parser, builder, assembler, ingestor.

Bottom-up coverage of :mod:`repro.service.stream` — the verifying
canonical-id parser, the columnar append buffer, exactly-once scatter
semantics (duplicates, late rows, unknown households, non-canonical id
fallback) — and the property that matters at the top: a city ingested as
an arbitrarily interleaved, out-of-order, chunked report stream settles
**digest-identical** to the same city ingested as whole-shard arrays,
including across overload rejection, a supervisor kill and a journal
resume.  No report is lost, none is double-counted.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.columnar import ColumnarNeighborhood
from repro.mechanisms.enki import serving_mechanism
from repro.robustness.chaos import ChaosInjector, ChaosPlan, ServiceChaosPlan
from repro.robustness.checkpoint import CheckpointStore
from repro.robustness.errors import ServiceInterrupted, ServiceOverloadError
from repro.robustness.quarantine import RawReport
from repro.service import (
    ColumnarReportBuilder,
    ReportChunk,
    ShardService,
    parse_canonical_ids,
    sample_shard,
    serve_city,
    shard_sizes,
)
from repro.sim.rng import root_entropy

SEED = 2214


# ----------------------------------------------------------------- parser

class TestCanonicalIdParser:
    def test_parses_generated_scheme(self):
        ids = np.asarray([f"s7-hh{row:03d}" for row in range(120)])
        shard, row, row_d, ok = parse_canonical_ids(ids)
        assert bool(ok.all())
        assert bool((shard == 7).all())
        assert np.array_equal(row, np.arange(120))
        assert bool((row_d == 3).all())

    def test_verifies_rather_than_guesses(self):
        # Every lookalike that does not reconstruct verbatim parses as
        # not-ok (and falls back to dictionary routing) — none misroutes.
        cases = [
            ("s1-hh07", True),   # zero-padded row: legal, width-checked later
            ("s0-hh0", True),    # shortest canonical id
            ("s01-hh7", False),  # zero-padded shard is never generated
            ("x1-hh07", False),  # wrong sigil
            ("s-hh07", False),   # no shard digits
            ("s1-hh", False),    # no row digits
            ("s1-h07", False),   # missing an 'h'
            ("s1-hh07x", False), # trailing junk
            ("s1xhh07", False),  # wrong separator
            ("", False),
        ]
        shard, row, row_d, ok = parse_canonical_ids(
            np.asarray([case[0] for case in cases])
        )
        assert ok.tolist() == [expected for _, expected in cases]
        assert shard[0] == 1 and row[0] == 7 and row_d[0] == 2
        assert shard[1] == 0 and row[1] == 0 and row_d[1] == 1

    def test_non_unicode_input_is_all_not_ok(self):
        _, _, _, ok = parse_canonical_ids(np.asarray([b"s1-hh0"]))
        assert not bool(ok.any())


# ---------------------------------------------------------------- builder

class TestColumnarReportBuilder:
    def test_mixed_appends_drain_in_arrival_order(self):
        builder = ColumnarReportBuilder(capacity=2)
        builder.append(RawReport("a", 1, 5, 2))
        builder.append_columnar(
            np.asarray(["b", "c"]), np.asarray([2.0, 3.0]),
            np.asarray([6.0, 7.0]), np.asarray([2.0, 2.0]),
        )
        builder.append(RawReport("d", 0, 8, 4))
        ids, begin, end, duration = builder.drain()
        assert ids.tolist() == ["a", "b", "c", "d"]
        assert begin.tolist() == [1.0, 2.0, 3.0, 0.0]
        assert end.tolist() == [5.0, 6.0, 7.0, 8.0]
        assert duration.tolist() == [2.0, 2.0, 2.0, 4.0]
        assert builder.drain() is None
        assert len(builder) == 0

    def test_growth_beyond_capacity_preserves_rows(self):
        builder = ColumnarReportBuilder(capacity=1)
        for i in range(100):
            builder.append(RawReport(f"h{i}", i, i + 4, 2))
        ids, begin, _, _ = builder.drain()
        assert begin.tolist() == [float(i) for i in range(100)]
        assert ids.tolist() == [f"h{i}" for i in range(100)]

    def test_non_numeric_fields_lower_to_nan(self):
        # The wire lowering is the same trust boundary as the scalar
        # validator: bools, strings, None all become NaN and are caught
        # by the quarantine, never silently coerced to a grid hour.
        builder = ColumnarReportBuilder()
        builder.append(RawReport("a", True, "noon", None))
        _, begin, end, duration = builder.drain()
        assert np.isnan(begin[0]) and np.isnan(end[0]) and np.isnan(duration[0])

    def test_age_stamp_tracks_oldest_report(self):
        builder = ColumnarReportBuilder()
        assert builder.age_s(10.0) == 0.0
        builder.append(RawReport("a", 1, 5, 2), now=5.0)
        builder.append(RawReport("b", 1, 5, 2), now=6.0)
        assert builder.age_s(7.5) == pytest.approx(2.5)
        builder.drain()
        assert builder.age_s(100.0) == 0.0

    def test_misaligned_chunk_rejected(self):
        builder = ColumnarReportBuilder()
        with pytest.raises(ValueError, match="aligned"):
            builder.append_columnar(
                np.asarray(["a"]), np.asarray([1.0, 2.0]),
                np.asarray([5.0]), np.asarray([2.0]),
            )


# --------------------------------------------------------- service-level

def _service(**kwargs) -> ShardService:
    kwargs.setdefault("mechanism", serving_mechanism(seed=SEED))
    kwargs.setdefault("workers", 1)
    return ShardService(**kwargs)


def _digests(result):
    return {index: record.digest for index, record in result.records.items()}


def _batch_reference(root, sizes):
    """Digests of the same shards settled through the batch entry point."""
    with _service() as service:
        for index, size in enumerate(sizes):
            neighborhood, shard_seed = sample_shard(root, index, size)
            service.submit_shard(index, neighborhood, seed=shard_seed)
        return _digests(service.drain())


class TestStreamIngestion:
    ROOT = root_entropy(SEED)

    def test_whole_shard_stream_settles_identically(self):
        sizes = shard_sizes(40, 2)
        reference = _batch_reference(self.ROOT, sizes)
        with _service() as service:
            for index, size in enumerate(sizes):
                neighborhood, shard_seed = sample_shard(self.ROOT, index, size)
                assert not service.register_stream_shard(
                    index, neighborhood, seed=shard_seed
                )
                begin, end, duration = neighborhood.truthful_wire()
                service.submit_reports(
                    ReportChunk(np.asarray(neighborhood.ids), begin, end, duration)
                )
            assert service.finish_streams() == ()
            assert _digests(service.drain()) == reference

    def test_unknown_household_rejected_not_crashed(self):
        with _service() as service:
            neighborhood, shard_seed = sample_shard(self.ROOT, 0, 20)
            service.register_stream_shard(0, neighborhood, seed=shard_seed)
            service.submit_reports(RawReport("nobody-home", 1, 5, 2))
            service.flush_reports()
            assert service.stream_stats.unknown_rejected == 1
            begin, end, duration = neighborhood.truthful_wire()
            service.submit_reports(
                ReportChunk(np.asarray(neighborhood.ids), begin, end, duration)
            )
            assert service.finish_streams() == ()
            assert service.drain().settled == 1

    def test_duplicates_first_wins_and_late_rows_bounce(self):
        sizes = [20]
        reference = _batch_reference(self.ROOT, sizes)
        with _service() as service:
            neighborhood, shard_seed = sample_shard(self.ROOT, 0, sizes[0])
            service.register_stream_shard(0, neighborhood, seed=shard_seed)
            ids = np.asarray(neighborhood.ids)
            begin, end, duration = neighborhood.truthful_wire()
            # The true rows and a conflicting duplicate of every row (all
            # zeros) land in the SAME micro-batch: first write must win.
            zeros = np.zeros_like(begin)
            service.submit_reports(ReportChunk(ids, begin, end, duration))
            service.submit_reports(ReportChunk(ids, zeros, zeros, zeros))
            service.flush_reports()
            assert service.stream_stats.duplicates == sizes[0]
            # The shard sealed on completion; a whole extra copy now
            # arrives late and must bounce without perturbing anything.
            service.submit_reports(ReportChunk(ids, zeros, zeros, zeros))
            service.flush_reports()
            assert service.stream_stats.late_rows == sizes[0]
            assert service.finish_streams() == ()
            assert _digests(service.drain()) == reference

    def test_exotic_ids_route_through_fallback_dictionary(self):
        # Ids the canonical parser cannot prove — including a canonical
        # *lookalike* — must still route exactly, via the registration
        # dictionary, and settle identically to the batch path.
        neighborhood = ColumnarNeighborhood(
            ids=("meter:alpha", "s0-hh1", "βeta"),
            true_start=np.asarray([1, 2, 3]),
            true_end=np.asarray([9, 10, 11]),
            duration=np.asarray([2, 3, 2]),
            rating=np.asarray([1.0, 1.5, 2.0]),
            valuation=np.asarray([1.0, 1.0, 1.0]),
        )
        with _service() as service:
            service.submit_shard(0, neighborhood, seed=3)
            reference = _digests(service.drain())
        with _service() as service:
            service.register_stream_shard(0, neighborhood, seed=3)
            begin, end, duration = neighborhood.truthful_wire()
            # Out of order, one report at a time.
            for i in (2, 0, 1):
                service.submit_reports(
                    RawReport(
                        neighborhood.ids[i],
                        float(begin[i]), float(end[i]), float(duration[i]),
                    )
                )
            service.flush_reports()
            assert service.finish_streams() == ()
            assert _digests(service.drain()) == reference

    def test_incomplete_shard_is_reported_never_settled(self):
        with _service() as service:
            neighborhood, shard_seed = sample_shard(self.ROOT, 0, 20)
            service.register_stream_shard(0, neighborhood, seed=shard_seed)
            begin, end, duration = neighborhood.truthful_wire()
            ids = np.asarray(neighborhood.ids)
            half = slice(0, 10)
            service.submit_reports(
                ReportChunk(ids[half], begin[half], end[half], duration[half])
            )
            assert service.finish_streams() == (0,)
            assert service.drain().settled == 0

    def test_overload_rejects_all_or_nothing_then_recovers(self):
        # A queue of 2 with 5 single-chunk shards: sealed shards pile up
        # behind backpressure until submit_reports pushes back with
        # exit-16 semantics; pumping and resubmitting the SAME payload
        # settles everything digest-identical — nothing lost, nothing
        # double-ingested.
        sizes = shard_sizes(50, 5)
        reference = _batch_reference(self.ROOT, sizes)
        with _service(queue_capacity=2, low_watermark=0) as service:
            shards = []
            for index, size in enumerate(sizes):
                neighborhood, shard_seed = sample_shard(self.ROOT, index, size)
                service.register_stream_shard(index, neighborhood, seed=shard_seed)
                begin, end, duration = neighborhood.truthful_wire()
                shards.append(
                    ReportChunk(np.asarray(neighborhood.ids), begin, end, duration)
                )
            rejected = 0
            for chunk in shards:
                while True:
                    try:
                        accepted = service.submit_reports(chunk)
                        assert accepted == len(chunk)
                        break
                    except ServiceOverloadError as exc:
                        assert exc.exit_code == 16
                        assert exc.retry_after_s > 0
                        assert exc.depth > 0
                        rejected += 1
                        service.pump(block=True)
                # Seal each shard eagerly so sealed shards pile up behind
                # the tiny queue and backpressure actually fires.
                service.flush_reports()
            assert rejected > 0
            assert service.finish_streams() == ()
            assert _digests(service.drain()) == reference

    def test_streamed_reports_reach_degraded_tier_intact(self):
        # A streamed shard whose primary settlement is poisoned must
        # settle on the degraded chain from the SAME shared-memory report
        # columns (wire_arrays), not from stale batch-path arrays.
        sizes = [12]
        with _service(
            mechanism=serving_mechanism(seed=SEED, quarantine_policy=None),
        ) as service:
            neighborhood, shard_seed = sample_shard(self.ROOT, 0, sizes[0])
            service.register_stream_shard(0, neighborhood, seed=shard_seed)
            begin, end, duration = neighborhood.truthful_wire()
            begin[3] = float("nan")  # malformed on the strict primary
            service.submit_reports(
                ReportChunk(np.asarray(neighborhood.ids), begin, end, duration)
            )
            assert service.finish_streams() == ()
            result = service.drain()
            record = result.records[0]
            assert record.served_tier >= 1
            assert record.n_settled + record.n_quarantined == record.n_input
            assert record.budget_balanced


# --------------------------------------------------------------- property

class TestStreamEqualsBatchProperty:
    """Hypothesis: ANY interleaving/chunking/ordering settles identically."""

    N = 45
    SHARDS = 3

    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_arbitrary_stream_is_digest_identical(self, data):
        seed = data.draw(st.integers(min_value=0, max_value=2**20))
        root = root_entropy(seed)
        sizes = shard_sizes(self.N, self.SHARDS)
        reference = _batch_reference(root, sizes)

        ids_parts, wire_parts = [], []
        with _service() as service:
            for index, size in enumerate(sizes):
                neighborhood, shard_seed = sample_shard(root, index, size)
                service.register_stream_shard(index, neighborhood, seed=shard_seed)
                begin, end, duration = neighborhood.truthful_wire()
                ids_parts.append(np.asarray(neighborhood.ids))
                wire_parts.append((begin, end, duration))
            ids = np.concatenate(ids_parts)
            begin = np.concatenate([part[0] for part in wire_parts])
            end = np.concatenate([part[1] for part in wire_parts])
            duration = np.concatenate([part[2] for part in wire_parts])

            order = data.draw(st.permutations(range(self.N)))
            at = 0
            while at < self.N:
                take = data.draw(st.integers(min_value=1, max_value=9))
                rows = np.asarray(order[at : at + take])
                at += rows.shape[0]
                if data.draw(st.booleans()):
                    service.submit_reports(
                        ReportChunk(ids[rows], begin[rows], end[rows], duration[rows])
                    )
                else:  # the scalar object path must coalesce identically
                    service.submit_reports(
                        RawReport(
                            ids[row], float(begin[row]), float(end[row]),
                            float(duration[row]),
                        )
                        for row in rows.tolist()
                    )
            assert service.finish_streams() == ()
            assert _digests(service.drain()) == reference


# ------------------------------------------------------------ end-to-end

class TestStreamedCity:
    def test_streamed_city_matches_batch_city(self):
        batch = serve_city(n=300, shards=4, workers=1, seed=SEED)
        streamed = serve_city(
            n=300, shards=4, workers=1, seed=SEED, stream=True, stream_chunk=23
        )
        assert _digests(streamed) == _digests(batch)
        assert streamed.settled == 4

    def test_streamed_city_survives_kill_and_resumes_identically(
        self, tmp_path
    ):
        def injector(tag, kill_after):
            return ChaosInjector(
                plan=ChaosPlan(root=SEED),
                fault_dir=str(tmp_path / f"faults-{tag}"),
                service_plan=ServiceChaosPlan(
                    root=SEED,
                    flood_shards=frozenset({1}),
                    kill_after=kill_after,
                ),
            )

        def run(tag, kill_after, journal):
            return serve_city(
                n=100, shards=4, workers=1, seed=SEED,
                mechanism=serving_mechanism(seed=SEED),
                journal=journal, chaos=injector(tag, kill_after),
                stream=True, stream_chunk=13,
            )

        reference = run(
            "ref", None,
            CheckpointStore(str(tmp_path / "ref.jsonl"), fresh=True),
        )
        assert reference.settled == 4

        path = str(tmp_path / "journal.jsonl")
        with pytest.raises(ServiceInterrupted) as excinfo:
            run("chaos", 2, CheckpointStore(path, fresh=True))
        assert excinfo.value.exit_code == 17

        resumed = run("chaos", 2, CheckpointStore(path))
        assert resumed.settled == 4
        assert resumed.replayed
        assert _digests(resumed) == _digests(reference)
        # ...and the whole streamed+killed+resumed story equals batch.
        batch = run_batch = serve_city(
            n=100, shards=4, workers=1, seed=SEED,
            mechanism=serving_mechanism(seed=SEED),
            chaos=injector("batch", None),
        )
        assert _digests(resumed) == _digests(batch)
