"""Empirical tests of the Section V theorems via the theory package."""

import random

import pytest

from repro.core.intervals import Interval
from repro.core.mechanism import EnkiMechanism
from repro.core.types import HouseholdType, Neighborhood, Preference
from repro.theory.bestresponse import best_response_sweep, candidate_windows
from repro.theory.properties import (
    budget_balance_margin,
    find_negative_utility_day,
    pareto_efficiency_ratio,
    participation_gain,
)


class TestBudgetBalance:
    def test_theorem1_on_random_days(self, mechanism, small_random_neighborhood):
        outcome = mechanism.run_day(small_random_neighborhood)
        margin = budget_balance_margin(outcome)
        assert margin >= 0.0
        assert margin == pytest.approx(0.2 * outcome.settlement.total_cost)


class TestParetoEfficiency:
    def test_theorem3_truthful_equilibrium_is_fully_valued(
        self, small_random_neighborhood
    ):
        # With truthful reports every allocation satisfies the true window,
        # so the valuation side of welfare is exactly maximal.
        ratio = pareto_efficiency_ratio(small_random_neighborhood)
        assert ratio == pytest.approx(1.0)


class TestIndividualRationality:
    def test_theorem4_negative_utility_exists(self):
        found = find_negative_utility_day(n_households=20, max_days=30, seed=3)
        assert found is not None
        outcome, household = found
        assert outcome.settlement.utilities[household] < 0.0


class TestParticipation:
    def test_theorem5_and_6_enki_beats_price_taking(self):
        # A peaky neighborhood: everyone wants the same evening hours, so
        # uncoordinated consumption stacks the peak and Enki's greedy wins.
        households = [
            HouseholdType(f"hh{i}", Preference.of(17, 23, 2), 5.0) for i in range(8)
        ]
        neighborhood = Neighborhood.of(*households)
        gain = participation_gain(neighborhood, days=4, seed=1)
        assert gain.mean_gain >= -1e-9  # Theorem 5
        assert gain.flexible_gain >= -1e-9  # Theorem 6

    def test_invalid_days_rejected(self, small_random_neighborhood):
        with pytest.raises(ValueError):
            participation_gain(small_random_neighborhood, days=0)


class TestBestResponse:
    def test_candidate_windows_enumeration(self):
        windows = candidate_windows(2, Interval(16, 20))
        assert (16, 18) in windows
        assert (16, 20) in windows
        assert (18, 20) in windows
        assert all(end - begin >= 2 for begin, end in windows)
        assert len(windows) == 6

    def test_sweep_contains_truthful_window(self):
        households = [
            HouseholdType("T", Preference.of(18, 20, 2), 5.0),
        ] + [
            HouseholdType(f"hh{i}", Preference.of(16 + (i % 3), 22, 2), 5.0)
            for i in range(6)
        ]
        neighborhood = Neighborhood.of(*households)
        result = best_response_sweep(
            neighborhood,
            "T",
            exploration=Interval(16, 22),
            repeats=2,
            seed=0,
        )
        assert result.truthful_window == (18, 20)
        assert (18, 20) in result.utilities
        assert result.regret() >= 0.0

    def test_unknown_target_rejected(self, small_random_neighborhood):
        with pytest.raises(KeyError):
            best_response_sweep(small_random_neighborhood, "nobody", repeats=1)

    def test_invalid_repeats_rejected(self, small_random_neighborhood):
        target = small_random_neighborhood.ids()[0]
        with pytest.raises(ValueError):
            best_response_sweep(small_random_neighborhood, target, repeats=0)

    def test_weak_ic_on_small_world(self):
        # Mini Figure 7: with enough truthful neighbors, truth-telling
        # should be (weakly) close to the best response.
        households = [
            HouseholdType("T", Preference.of(18, 20, 2), 5.0),
        ] + [
            HouseholdType(
                f"hh{i}",
                Preference.of(14 + (i % 5), 20 + (i % 4), 2),
                4.0 + (i % 3),
            )
            for i in range(12)
        ]
        neighborhood = Neighborhood.of(*households)
        result = best_response_sweep(
            neighborhood,
            "T",
            exploration=Interval(16, 22),
            repeats=4,
            seed=2,
        )
        # Truth-telling should leave only a small fraction of utility on
        # the table (weak IC holds in expectation, not pointwise).
        assert result.regret() <= 0.25 * abs(result.best_utility) + 1e-9
