"""Unit tests for the domain types (Table I)."""

import pytest

from repro.core.intervals import Interval, IntervalError
from repro.core.types import (
    HouseholdType,
    Neighborhood,
    Preference,
    Report,
    validate_allocation,
    validate_consumption,
)


class TestPreference:
    def test_of_builder_matches_paper_triple(self):
        pref = Preference.of(18, 22, 2)
        assert pref.begin == 18
        assert pref.end == 22
        assert pref.duration == 2
        assert pref.slack == 2

    def test_window_shorter_than_duration_rejected(self):
        with pytest.raises(IntervalError):
            Preference.of(18, 19, 2)

    def test_zero_duration_rejected(self):
        with pytest.raises(IntervalError):
            Preference.of(18, 20, 0)

    def test_admits_only_exact_duration_inside_window(self):
        pref = Preference.of(18, 22, 2)
        assert pref.admits(Interval(18, 20))
        assert pref.admits(Interval(20, 22))
        assert not pref.admits(Interval(17, 19))  # outside window
        assert not pref.admits(Interval(18, 21))  # wrong duration

    def test_placements_enumeration(self):
        pref = Preference.of(18, 21, 2)
        assert list(pref.placements()) == [Interval(18, 20), Interval(19, 21)]


class TestHouseholdType:
    def test_valid_household(self):
        hh = HouseholdType("A", Preference.of(18, 22, 2), 5.0)
        assert hh.duration == 2
        assert hh.rating_kw == 2.0

    def test_nonpositive_valuation_rejected(self):
        with pytest.raises(ValueError):
            HouseholdType("A", Preference.of(18, 22, 2), 0.0)

    def test_nonpositive_rating_rejected(self):
        with pytest.raises(ValueError):
            HouseholdType("A", Preference.of(18, 22, 2), 5.0, rating_kw=-1.0)

    def test_with_preference_copies(self):
        hh = HouseholdType("A", Preference.of(18, 22, 2), 5.0)
        other = hh.with_preference(Preference.of(10, 14, 2))
        assert other.true_preference.begin == 10
        assert hh.true_preference.begin == 18


class TestNeighborhood:
    def test_of_builder_and_access(self):
        nb = Neighborhood.of(
            HouseholdType("A", Preference.of(18, 22, 2), 5.0),
            HouseholdType("B", Preference.of(10, 14, 2), 3.0),
        )
        assert len(nb) == 2
        assert "A" in nb
        assert nb["B"].valuation_factor == 3.0
        assert nb.ids() == ["A", "B"]

    def test_mismatched_key_rejected(self):
        hh = HouseholdType("A", Preference.of(18, 22, 2), 5.0)
        with pytest.raises(ValueError):
            Neighborhood({"B": hh})


class TestValidation:
    def _world(self):
        nb = Neighborhood.of(
            HouseholdType("A", Preference.of(18, 22, 2), 5.0),
        )
        reports = {"A": Report("A", Preference.of(18, 22, 2))}
        return nb, reports

    def test_valid_allocation_passes(self):
        nb, reports = self._world()
        validate_allocation(reports, {"A": Interval(19, 21)})

    def test_missing_household_rejected(self):
        nb, reports = self._world()
        with pytest.raises(IntervalError):
            validate_allocation(reports, {})

    def test_unknown_household_rejected(self):
        nb, reports = self._world()
        with pytest.raises(IntervalError):
            validate_allocation(
                reports, {"A": Interval(19, 21), "Z": Interval(0, 2)}
            )

    def test_allocation_outside_window_rejected(self):
        nb, reports = self._world()
        with pytest.raises(IntervalError):
            validate_allocation(reports, {"A": Interval(21, 23)})

    def test_allocation_wrong_duration_rejected(self):
        nb, reports = self._world()
        with pytest.raises(IntervalError):
            validate_allocation(reports, {"A": Interval(18, 21)})

    def test_consumption_must_stay_in_true_window(self):
        nb, _ = self._world()
        with pytest.raises(IntervalError):
            validate_consumption(nb.households, {"A": Interval(16, 18)})

    def test_consumption_duration_enforced(self):
        nb, _ = self._world()
        with pytest.raises(IntervalError):
            validate_consumption(nb.households, {"A": Interval(18, 21)})

    def test_valid_consumption_passes(self):
        nb, _ = self._world()
        validate_consumption(nb.households, {"A": Interval(20, 22)})

    def test_report_truthfulness(self):
        pref = Preference.of(18, 22, 2)
        assert Report("A", pref).is_truthful(pref)
        assert not Report("A", Preference.of(18, 23, 2)).is_truthful(pref)
