"""Unit and integration tests for the Section VII user-study game."""

import random

import pytest

from repro.core.types import Preference
from repro.userstudy.analysis import (
    STAGE_ORDER,
    STAGES,
    average_defection_rates,
    average_flexibility_series,
    defection_mann_whitney,
    defection_rate,
    flexibility_series,
    stage_rounds,
    treatment_defection_rates,
    true_interval_analysis,
    true_interval_selecting_ratio,
)
from repro.userstudy.game import (
    ROUNDS_PER_SESSION,
    ArtificialAgentScript,
    GameSession,
    _scores_from_utilities,
)
from repro.userstudy.subjects import (
    GoodSubject,
    LearningSubject,
    RandomSubject,
    TruthfulSubject,
    default_subject_pool,
)
from repro.userstudy.treatments import run_study


class TestSubjectModels:
    def test_truthful_always_exact(self, rng):
        subject = TruthfulSubject()
        pref = Preference.of(18, 20, 2)
        assert subject.submit(0, pref, [], rng) == pref

    def test_random_subject_keeps_duration(self, rng):
        subject = RandomSubject()
        pref = Preference.of(18, 20, 2)
        for round_index in range(20):
            submitted = subject.submit(round_index, pref, [], rng)
            assert submitted.duration == 2

    def test_good_subject_truthful_after_switch(self, rng):
        subject = GoodSubject(switch_round=8)
        pref = Preference.of(18, 20, 2)
        for round_index in range(8, 16):
            assert subject.submit(round_index, pref, [], rng) == pref

    def test_good_subject_explores_early(self):
        subject = GoodSubject(switch_round=8, explore_probability=1.0)
        pref = Preference.of(18, 20, 2)
        rng = random.Random(0)
        submissions = {subject.submit(r, pref, [], rng) for r in range(8)}
        assert any(s != pref for s in submissions)

    def test_learning_subject_probability_decays(self, rng):
        subject = LearningSubject(explore_start=0.8, explore_decay=0.5)
        history = []
        early = subject._explore_probability(history)
        from repro.userstudy.subjects import RoundExperience

        pref = Preference.of(18, 20, 2)
        history = [
            RoundExperience(i, pref, pref, False, 80.0) for i in range(6)
        ]
        late = subject._explore_probability(history)
        assert late < early

    def test_default_pool_composition(self):
        pool = default_subject_pool(random.Random(0))
        assert len(pool) == 20
        understandings = [s.understanding for s in pool]
        assert understandings.count("none") == 4
        assert understandings.count("intermediate") == 14
        assert understandings.count("good") == 2

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LearningSubject(explore_start=1.5)
        with pytest.raises(ValueError):
            GoodSubject(switch_round=-1)
        with pytest.raises(ValueError):
            GoodSubject(explore_probability=2.0)


class TestScores:
    def test_scores_map_to_0_100(self):
        scores = _scores_from_utilities({"a": -3.0, "b": 1.0, "c": 5.0})
        assert scores["a"] == 0.0
        assert scores["c"] == 100.0
        assert scores["b"] == pytest.approx(50.0)

    def test_degenerate_utilities_score_50(self):
        scores = _scores_from_utilities({"a": 2.0, "b": 2.0})
        assert scores == {"a": 50.0, "b": 50.0}


class TestArtificialAgents:
    def test_cooperator_submits_truth(self, rng):
        agent = ArtificialAgentScript("agent0", defect_rounds=range(0))
        pref = Preference.of(18, 20, 2)
        assert agent.submits(3, pref, rng) == pref

    def test_defector_shifts_during_defect_rounds(self):
        agent = ArtificialAgentScript("agent0", defect_rounds=range(0, 8), shift=3)
        pref = Preference.of(18, 20, 2)
        rng = random.Random(0)
        submitted = agent.submits(2, pref, rng)
        assert submitted != pref
        # And cooperates afterwards.
        assert agent.submits(9, pref, rng) == pref


class TestGameSession:
    def test_full_session_shape(self):
        session = GameSession(
            [TruthfulSubject(), RandomSubject()], n_agents=4
        )
        result = session.play(treatment=1, session_index=0, seed=11)
        assert len(result.logs) == 2 * ROUNDS_PER_SESSION
        for log in result.subject_logs(0):
            # Truthful subjects never defect: allocation fits their truth.
            assert not log.defected
            assert log.chose_exact_true_interval
            assert log.flexibility_ratio == pytest.approx(1.0)

    def test_subject_preference_changes_every_four_rounds(self):
        session = GameSession([TruthfulSubject()], n_agents=2)
        result = session.play(treatment=2, session_index=0, seed=3)
        logs = result.subject_logs(0)
        by_round = {log.round_index: log.true_preference for log in logs}
        for block_start in (0, 4, 8, 12):
            block = {by_round[r] for r in range(block_start, block_start + 4)}
            assert len(block) == 1

    def test_scores_within_range(self):
        session = GameSession([RandomSubject()], n_agents=4)
        result = session.play(treatment=2, session_index=0, seed=5)
        for log in result.logs:
            assert 0.0 <= log.score <= 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            GameSession([], n_agents=4)
        with pytest.raises(ValueError):
            GameSession([TruthfulSubject()], n_agents=-1)


class TestStudyAndAnalysis:
    @pytest.fixture(scope="class")
    def study(self):
        return run_study(seed=42)

    def test_study_structure(self, study):
        assert len(study.subjects) == 20
        assert len(study.by_treatment(1)) == 16
        assert len(study.by_treatment(2)) == 4
        for record in study.subjects:
            assert len(record.logs) == ROUNDS_PER_SESSION

    def test_stage_definitions_match_paper(self):
        assert STAGES["Overall"] == (0, 16)
        assert STAGES["Initial"] == (0, 4)
        assert STAGES["Defect"] == (0, 8)
        assert STAGES["Cooperate"] == (8, 16)
        assert stage_rounds("Cooperate") == 8

    def test_defection_rates_bounded(self, study):
        rates = average_defection_rates(study)
        assert set(rates) == set(STAGE_ORDER)
        assert all(0.0 <= value <= 1.0 for value in rates.values())

    def test_table2_shape_initial_above_cooperate(self, study):
        rates = average_defection_rates(study)
        assert rates["Initial"] > rates["Cooperate"]
        assert rates["Overall"] < 0.5

    def test_table3_overall_significant(self, study):
        tests = defection_mann_whitney(study)
        assert tests["Overall"].p_value < 0.05
        assert tests["Cooperate"].p_value < 0.05

    def test_table4_covers_both_treatments(self, study):
        rates = treatment_defection_rates(study)
        assert set(rates) == {1, 2}
        for treatment_rates in rates.values():
            assert set(treatment_rates) == set(STAGE_ORDER)

    def test_fig8_analysis_excludes_non_understanding(self, study):
        analysis = true_interval_analysis(study)
        assert len(analysis.subjects) == 16
        assert analysis.mean_cooperate >= analysis.mean_initial

    def test_fig9_series_properties(self, study):
        good = study.understanding_group("good")
        for record in good:
            series = flexibility_series(record)
            assert len(series) == ROUNDS_PER_SESSION
            assert all(0.0 <= value <= 1.0 for value in series)
            # P7/P8 pattern: truthful lock-in by the final rounds.
            assert all(value == pytest.approx(1.0) for value in series[-4:])

    def test_average_flexibility_series(self, study):
        intermediate = study.understanding_group("intermediate")[:4]
        series = average_flexibility_series(intermediate)
        assert len(series) == ROUNDS_PER_SESSION
        # The paper's reading: average flexibility ratio increases.
        first_half = sum(series[:8]) / 8
        second_half = sum(series[8:]) / 8
        assert second_half >= first_half - 0.1

    def test_subject_specific_rates(self, study):
        record = study.subjects[0]
        rate = defection_rate(record, "Overall")
        assert 0.0 <= rate <= 1.0
        ratio = true_interval_selecting_ratio(record, "Overall")
        assert 0.0 <= ratio <= 1.0

    def test_wrong_pool_size_rejected(self):
        with pytest.raises(ValueError):
            run_study(subject_pool=[TruthfulSubject()], seed=0)

    def test_reproducible(self):
        a = run_study(seed=9)
        b = run_study(seed=9)
        rates_a = average_defection_rates(a)
        rates_b = average_defection_rates(b)
        assert rates_a == pytest.approx(rates_b)
