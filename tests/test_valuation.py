"""Unit tests for the valuation function (Eq. 3 and its four criteria)."""

import pytest

from repro.core.intervals import Interval
from repro.core.types import HouseholdType, Preference
from repro.core.valuation import (
    household_valuation,
    max_valuation,
    satisfied_hours,
    valuation,
)


class TestValuationShape:
    def test_zero_overlap_zero_value(self):
        assert valuation(0.0, 4, 5.0) == 0.0

    def test_maximum_at_full_overlap(self):
        # V(v, v, rho) = rho * v / 2.
        assert valuation(4.0, 4, 5.0) == pytest.approx(10.0)
        assert max_valuation(4, 5.0) == pytest.approx(10.0)

    def test_value_clamps_beyond_duration(self):
        assert valuation(6.0, 4, 5.0) == pytest.approx(valuation(4.0, 4, 5.0))

    def test_increasing_in_tau(self):
        values = [valuation(t, 4, 5.0) for t in range(5)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_increasing_in_duration(self):
        assert max_valuation(3, 5.0) < max_valuation(4, 5.0)

    def test_increasing_in_rho(self):
        assert valuation(2.0, 4, 3.0) < valuation(2.0, 4, 6.0)

    def test_marginal_benefit_nonincreasing(self):
        marginals = [
            valuation(t + 1, 4, 5.0) - valuation(t, 4, 5.0) for t in range(4)
        ]
        assert all(b <= a for a, b in zip(marginals, marginals[1:]))

    def test_exact_quadratic_form(self):
        # V(tau) = -rho/(2v) tau^2 + rho tau at tau=2, v=4, rho=5: -5/8*4 + 10.
        assert valuation(2.0, 4, 5.0) == pytest.approx(7.5)


class TestValuationValidation:
    def test_negative_tau_rejected(self):
        with pytest.raises(ValueError):
            valuation(-1.0, 4, 5.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            valuation(1.0, 0, 5.0)

    def test_nonpositive_rho_rejected(self):
        with pytest.raises(ValueError):
            valuation(1.0, 4, 0.0)


class TestSatisfiedHours:
    def test_tau_measured_on_allocation_vs_true_window(self):
        # Theorem 2's scenario: allocation (14, 16) misses true (18, 20).
        assert satisfied_hours(Interval(14, 16), Interval(18, 20)) == 0

    def test_partial_overlap(self):
        assert satisfied_hours(Interval(17, 19), Interval(18, 22)) == 1

    def test_household_valuation_uses_true_window(self):
        hh = HouseholdType("A", Preference.of(18, 20, 2), 5.0)
        # Allocation fully inside the true window: maximum value rho*v/2.
        assert household_valuation(hh, Interval(18, 20)) == pytest.approx(5.0)
        # Allocation fully outside: zero value even if consumption defects back.
        assert household_valuation(hh, Interval(14, 16)) == 0.0
