"""Tests for the verify compliance report and the scale sweep."""

import pytest

from repro.experiments import abl_scale, verify_properties


class TestVerifyExperiment:
    @pytest.fixture(scope="class")
    def report(self):
        return verify_properties.run(n_households=10, seed=3)

    def test_all_claims_pass(self, report):
        failing = [row.claim for row in report.rows if not row.passed]
        assert not failing, f"claims failed: {failing}"
        assert report.all_passed

    def test_covers_every_theorem_and_property(self, report):
        claims = " ".join(row.claim for row in report.rows)
        for marker in ("Thm 1", "Thm 2", "Thm 3", "Thm 4", "Thm 5", "Thm 6",
                       "Property 1", "Property 2", "Property 3"):
            assert marker in claims

    def test_render_includes_verdicts(self, report):
        rendered = report.render()
        assert "PASS" in rendered
        assert "all claims verified" in rendered


class TestScaleExperiment:
    def test_runs_at_moderate_scale(self):
        result = abl_scale.run(populations=(50, 150), seed=1)
        assert [p.n_households for p in result.points] == [50, 150]
        for point in result.points:
            assert point.greedy_ms > 0
            assert 1.0 <= point.par <= 24.0
            assert point.dynamics_rounds >= 1
        assert "greedy (ms)" in result.render()

    def test_greedy_time_subquadratic(self):
        # Median of three runs guards against scheduler noise on shared CPUs.
        ratios = []
        for seed in (2, 3, 4):
            result = abl_scale.run(populations=(100, 400), seed=seed)
            small, large = result.points
            ratios.append(large.greedy_ms / max(small.greedy_ms, 1.0))
        # 4x the households should cost far less than 16x the time.
        assert sorted(ratios)[1] < 16.0
